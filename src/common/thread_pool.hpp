// Fixed-size thread pool, per-batch task groups, and blocked parallel-for.
//
// Batch experiment drivers evaluate hundreds of seeds per dataset; the seeds
// are independent, so the eval harness and the heavier benches fan them out
// over a pool. The pool is deliberately simple — a mutex-guarded queue, no
// work stealing — because tasks here are coarse (milliseconds to seconds).
//
// Two levels of completion tracking exist:
//   * TaskGroup — per-batch. Each group waits for exactly the tasks it
//     submitted and rethrows only its own first error. Two groups sharing one
//     pool are fully independent: neither blocks on (or steals exceptions
//     from) the other's tasks. This is what the two-level BatchCluster
//     scheduling relies on, and what ThreadPool::ParallelFor uses internally.
//   * ThreadPool::Wait — whole-pool drain (every queued task from every
//     group). Kept for destructor semantics and for callers that raw-Submit
//     without a group.
//
// A TaskGroup::Wait() caller that is itself a pool worker helps execute its
// own group's queued tasks instead of sleeping, so nesting a group inside a
// pool task (intra-query sharding inside an across-seed worker) cannot
// deadlock even when every worker is blocked in a Wait().
#ifndef LACA_COMMON_THREAD_POOL_HPP_
#define LACA_COMMON_THREAD_POOL_HPP_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace laca {

class TaskGroup;

/// A fixed pool of worker threads executing submitted tasks FIFO.
///
/// Tasks submitted directly via Submit() have their first exception captured
/// at pool level and rethrown from Wait(); tasks submitted through a
/// TaskGroup report to that group instead. Destruction waits for all
/// submitted tasks to finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 uses the hardware concurrency (at least
  /// one). Throws std::invalid_argument never; clamps instead.
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocks until all tasks finish, then joins the workers.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues an ungrouped task. Its first exception is captured at pool
  /// level and rethrown by Wait(). Prefer a TaskGroup when two batches can
  /// be in flight at once.
  void Submit(std::function<void()> task);

  /// Blocks until EVERY submitted task (from every group) has finished —
  /// a whole-pool drain, not a batch wait. Rethrows the first exception of
  /// an ungrouped task, if any (once). Grouped tasks rethrow from their
  /// group's Wait() instead.
  void Wait();

  /// Runs fn(i) for i in [begin, end) across the pool in contiguous blocks,
  /// then waits. `fn` must be safe to call concurrently for distinct i.
  /// Internally batch-scoped: concurrent ParallelFor calls on one pool do
  /// not wait on each other's blocks or steal each other's exceptions.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;  // null for ungrouped Submit()
  };

  void SubmitTask(Task task) LACA_EXCLUDES(mutex_);
  // Pops and runs the first queued task of `group` on the calling thread.
  // Returns false if none is queued. Used by TaskGroup::Wait to help-run.
  bool RunOneTaskFromGroup(TaskGroup* group) LACA_EXCLUDES(mutex_);
  void RunTask(Task task) LACA_EXCLUDES(mutex_);
  void FinishTask() LACA_EXCLUDES(mutex_);
  void WorkerLoop() LACA_EXCLUDES(mutex_);
  // True when every submitted task has finished (the Wait()/dtor drain
  // condition: nothing queued, nothing running).
  bool DrainedLocked() const LACA_REQUIRES(mutex_) {
    return queue_.empty() && in_flight_ == 0;
  }

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<Task> queue_ LACA_GUARDED_BY(mutex_);
  CondVar task_ready_;
  CondVar all_done_;
  size_t in_flight_ LACA_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ LACA_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ LACA_GUARDED_BY(mutex_);
};

/// A batch of tasks on a shared ThreadPool with private completion and error
/// tracking: Wait() returns when exactly this group's tasks are done and
/// rethrows only this group's first exception. Reusable after Wait(). The
/// group must outlive its tasks (the destructor waits, without rethrowing).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for any still-pending tasks (exceptions are swallowed — call
  /// Wait() first if you need them).
  ~TaskGroup();

  /// Enqueues a task belonging to this group.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted to THIS group has finished, helping
  /// to execute the group's queued tasks on the calling thread. If any task
  /// threw, the group's first captured exception is rethrown here (once).
  void Wait();

  /// Runs fn(i) for i in [begin, end) as tasks of this group, then Wait()s.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  friend class ThreadPool;

  void OnError(std::exception_ptr error) LACA_EXCLUDES(mutex_);
  void OnTaskDone() LACA_EXCLUDES(mutex_);

  ThreadPool& pool_;
  Mutex mutex_;
  CondVar done_;
  size_t pending_ LACA_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ LACA_GUARDED_BY(mutex_);
};

/// Process-wide lazily-constructed pool sized to the hardware concurrency.
/// One-shot fan-outs (the free ParallelFor, parallel method evaluation) run
/// on it through TaskGroups instead of paying thread spawn/join per call.
/// Do not block a SharedPool() worker on work that only other SharedPool()
/// workers can perform (TaskGroup::Wait is safe: it helps).
ThreadPool& SharedPool();

/// Runs fn(i) for i in [begin, end) on the shared pool, using at most
/// `num_threads` concurrent blocks (0 = hardware concurrency). Convenience
/// for one-shot fan-outs; no per-call thread spawn cost.
void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// SharedPool() on machines with more than one hardware thread, null (=
/// run serially) otherwise. The deterministic LA kernels produce identical
/// results serial or pooled, so on a single-core host — where every task
/// handoff forces a context switch and the caller would help-run everything
/// anyway — skipping the pool is pure win (measured ~6x on TNAM builds).
ThreadPool* SharedPoolOrSerial();

/// Deterministic blocked fan-out for the dense-LA kernels: partitions
/// [0, total) into fixed-size blocks of `block_size` (chosen by the caller
/// from the PROBLEM shape, never from the worker count) and runs
/// fn(block, lo, hi) for each block, in block order when serial.
///
/// With a null pool (or a single block) the blocks run inline on the calling
/// thread; otherwise they fan out over the pool as one TaskGroup (the caller
/// help-runs, so nesting inside a pool worker cannot deadlock). Because the
/// partition is independent of the worker count, any kernel whose blocks
/// write disjoint outputs and keep a fixed intra-block operation order
/// produces bit-identical results at every thread count — the determinism
/// contract of the attribute plane (DESIGN.md §6).
void ForEachBlock(ThreadPool* pool, size_t total, size_t block_size,
                  const std::function<void(size_t block, size_t lo, size_t hi)>& fn);

/// The shared "stay serial below a work threshold" gate of the blocked LA
/// kernels: returns `pool` when `work >= min_work`, null otherwise. Gating
/// never changes results (blocked runs are bit-identical to serial); it only
/// keeps task dispatch from dominating small problems.
inline ThreadPool* GateBySize(ThreadPool* pool, uint64_t work,
                              uint64_t min_work) {
  return work >= min_work ? pool : nullptr;
}

}  // namespace laca

#endif  // LACA_COMMON_THREAD_POOL_HPP_
