// Fixed-size thread pool and blocked parallel-for.
//
// Batch experiment drivers evaluate hundreds of seeds per dataset; the seeds
// are independent, so the eval harness and the heavier benches fan them out
// over a pool. The pool is deliberately simple — a mutex-guarded queue, no
// work stealing — because tasks here are coarse (milliseconds to seconds).
#ifndef LACA_COMMON_THREAD_POOL_HPP_
#define LACA_COMMON_THREAD_POOL_HPP_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace laca {

/// A fixed pool of worker threads executing submitted tasks FIFO.
///
/// Exceptions thrown by tasks are captured; the first one is rethrown from
/// `Wait()` (and the remaining tasks still run). Destruction waits for all
/// submitted tasks to finish.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 uses the hardware concurrency (at least
  /// one). Throws std::invalid_argument never; clamps instead.
  explicit ThreadPool(size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Blocks until all tasks finish, then joins the workers.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here (once).
  void Wait();

  /// Runs fn(i) for i in [begin, end) across the pool in contiguous blocks,
  /// then waits. `fn` must be safe to call concurrently for distinct i.
  /// Exceptions propagate as in Wait().
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

/// Runs fn(i) for i in [begin, end) on a transient pool of `num_threads`
/// workers (0 = hardware concurrency). Convenience for one-shot fan-outs.
void ParallelFor(size_t begin, size_t end, size_t num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace laca

#endif  // LACA_COMMON_THREAD_POOL_HPP_
