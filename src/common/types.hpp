// Core type aliases shared across all laca modules.
#ifndef LACA_COMMON_TYPES_HPP_
#define LACA_COMMON_TYPES_HPP_

#include <cstdint>

namespace laca {

/// Node identifier. Graphs in this library are bounded by 2^32 nodes.
using NodeId = uint32_t;

/// Index into the CSR edge arrays (2 * |E| entries for undirected graphs).
using EdgeIndex = uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

}  // namespace laca

#endif  // LACA_COMMON_TYPES_HPP_
