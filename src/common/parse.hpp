// Strict whole-token numeric parsing for untrusted text inputs.
//
// The dataset loaders (graph/io.cpp), the CLI drivers, and the laca_serve
// request protocol all consume whitespace-split tokens from files or sockets
// we do not control. std::stoul/std::stod are the wrong tool there: they
// accept leading whitespace and trailing garbage ("3:1.0x"), silently wrap
// negative numbers into huge unsigned values ("-1" -> 2^64-1), and throw
// context-free exceptions on empty input. These helpers parse the ENTIRE
// token or return nullopt, never throw, and never wrap — the caller decides
// how to report the bad token (with file/line or request context).
#ifndef LACA_COMMON_PARSE_HPP_
#define LACA_COMMON_PARSE_HPP_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string_view>

namespace laca {

/// Parses a non-negative decimal integer occupying the whole token.
/// Rejects empty tokens, signs (so "-1" cannot wrap), leading whitespace,
/// trailing garbage, and values above uint64_t range.
inline std::optional<uint64_t> ParseU64(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  uint64_t value = 0;
  const char* end = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(tok.data(), end, value, 10);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

/// Parses a finite floating-point number occupying the whole token.
/// Rejects empty tokens, trailing garbage, leading whitespace, and the
/// "inf"/"nan" spellings (non-finite values poison every downstream sum).
inline std::optional<double> ParseF64(std::string_view tok) {
  if (tok.empty()) return std::nullopt;
  double value = 0.0;
  const char* end = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(tok.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace laca

#endif  // LACA_COMMON_PARSE_HPP_
