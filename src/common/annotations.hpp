// Clang Thread Safety Analysis annotations (DESIGN.md §10).
//
// Every shared structure in this codebase declares, in its type, which lock
// guards which field and which functions require which capability — and the
// clang CI job compiles with -Werror=thread-safety, turning lock-discipline
// violations into compile errors instead of TSan findings that depend on an
// interleaving actually happening (this container has one core; real traffic
// has many). Under g++ and every non-clang compiler the macros expand to
// nothing, so release and sanitizer builds are byte-for-byte unaffected.
//
// Use through common/mutex.hpp (annotated Mutex/MutexLock/CondVar wrappers)
// rather than annotating raw std::mutex members: std::mutex is not a
// capability type, so the analysis cannot see through it.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef LACA_COMMON_ANNOTATIONS_HPP_
#define LACA_COMMON_ANNOTATIONS_HPP_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LACA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef LACA_THREAD_ANNOTATION_
#define LACA_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

/// Declares a type as a capability (lock) the analysis tracks.
#define LACA_CAPABILITY(x) LACA_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define LACA_SCOPED_CAPABILITY LACA_THREAD_ANNOTATION_(scoped_lockable)

/// Field is readable/writable only while holding `x`.
#define LACA_GUARDED_BY(x) LACA_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee (not the pointer) is guarded by `x`.
#define LACA_PT_GUARDED_BY(x) LACA_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define LACA_ACQUIRE(...) LACA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define LACA_RELEASE(...) LACA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define LACA_TRY_ACQUIRE(b, ...) \
  LACA_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Caller must hold the capability for the call (the `*Locked()` contract).
#define LACA_REQUIRES(...) LACA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (guards against self-deadlock).
#define LACA_EXCLUDES(...) LACA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define LACA_RETURN_CAPABILITY(x) LACA_THREAD_ANNOTATION_(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define LACA_ASSERT_CAPABILITY(x) LACA_THREAD_ANNOTATION_(assert_capability(x))

/// Scoped opt-out. Every use must carry a comment justifying why the
/// analysis cannot see the invariant that makes the code correct.
#define LACA_NO_THREAD_SAFETY_ANALYSIS \
  LACA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // LACA_COMMON_ANNOTATIONS_HPP_
