// Lloyd's k-means with k-means++ seeding.
//
// Substrate for the embedding-baseline extraction modes of Table V: the
// "(SC)" variants run k-means on spectral embeddings (clustering/spectral.hpp)
// and k-means is also a natural consumer of the GNN-style embeddings of
// core/gnn.hpp. Kept general: clusters the rows of any DenseMatrix.
#ifndef LACA_CLUSTERING_KMEANS_HPP_
#define LACA_CLUSTERING_KMEANS_HPP_

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace laca {

/// Options for KMeans.
struct KMeansOptions {
  /// Number of clusters; must be >= 1 and <= the number of points.
  uint32_t k = 8;
  /// Lloyd iteration cap.
  int max_iterations = 50;
  /// Stop when the relative inertia improvement falls below this.
  double tolerance = 1e-6;
  uint64_t seed = 1;
};

/// Outcome of a k-means run.
struct KMeansResult {
  /// Cluster id per input row, in [0, k).
  std::vector<uint32_t> assignment;
  /// k x dim cluster centers.
  DenseMatrix centers;
  /// Sum of squared distances to assigned centers.
  double inertia = 0.0;
  /// Lloyd iterations executed.
  int iterations = 0;
};

/// Clusters the rows of `points` into `k` groups. Deterministic given the
/// seed. Empty clusters are re-seeded with the point farthest from its
/// center. Throws std::invalid_argument on bad options or empty input.
KMeansResult KMeans(const DenseMatrix& points, const KMeansOptions& opts);

}  // namespace laca

#endif  // LACA_CLUSTERING_KMEANS_HPP_
