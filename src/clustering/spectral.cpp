#include "clustering/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace laca {
namespace {

double DistanceSq(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

struct SimilarityGraph {
  /// Symmetrized k-NN adjacency: per node, (neighbor, weight) pairs.
  std::vector<std::vector<std::pair<uint32_t, double>>> adj;
  std::vector<double> inv_sqrt_degree;
};

SimilarityGraph BuildKnnGraph(const DenseMatrix& points, uint32_t knn) {
  const size_t n = points.rows();
  const uint32_t k = static_cast<uint32_t>(std::min<size_t>(knn, n - 1));

  // Brute-force k-NN (squared distances).
  std::vector<std::vector<std::pair<double, uint32_t>>> nearest(n);
  std::vector<std::pair<double, uint32_t>> cand;
  double bandwidth_acc = 0.0;
  size_t bandwidth_count = 0;
  for (size_t i = 0; i < n; ++i) {
    cand.clear();
    cand.reserve(n - 1);
    auto row = points.Row(i);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      cand.emplace_back(DistanceSq(row, points.Row(j)),
                        static_cast<uint32_t>(j));
    }
    std::partial_sort(cand.begin(), cand.begin() + k, cand.end());
    nearest[i].assign(cand.begin(), cand.begin() + k);
    for (uint32_t e = 0; e < k; ++e) {
      bandwidth_acc += std::sqrt(nearest[i][e].first);
      ++bandwidth_count;
    }
  }
  const double bandwidth =
      std::max(bandwidth_acc / static_cast<double>(bandwidth_count), 1e-12);
  const double gamma = 1.0 / (2.0 * bandwidth * bandwidth);

  // Symmetrize (union of directed k-NN edges) with Gaussian weights.
  SimilarityGraph g;
  g.adj.assign(n, {});
  for (size_t i = 0; i < n; ++i) {
    for (const auto& [dist_sq, j] : nearest[i]) {
      const double w = std::exp(-dist_sq * gamma);
      g.adj[i].emplace_back(j, w);
      g.adj[j].emplace_back(static_cast<uint32_t>(i), w);
    }
  }
  // Merge duplicate (i, j) pairs, keeping one copy.
  g.inv_sqrt_degree.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto& edges = g.adj[i];
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                edges.end());
    double degree = 0.0;
    for (const auto& [j, w] : edges) degree += w;
    g.inv_sqrt_degree[i] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
  }
  return g;
}

/// y = (S + I) x / 2 for every column, where S = D^{-1/2} W D^{-1/2}.
/// The +I shift maps S's spectrum from [-1, 1] to [0, 1] so subspace
/// iteration converges to the *algebraically* largest eigenvectors (the
/// cluster indicators) instead of large-magnitude negative ones, which
/// dominate on near-bipartite neighborhood graphs (rings, paths).
void MultiplyShiftedAffinity(const SimilarityGraph& g, const DenseMatrix& x,
                             DenseMatrix* y) {
  const size_t n = x.rows(), c = x.cols();
  std::fill(y->data().begin(), y->data().end(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto out = y->Row(i);
    const double di = g.inv_sqrt_degree[i];
    for (const auto& [j, w] : g.adj[i]) {
      const double scale = 0.5 * di * w * g.inv_sqrt_degree[j];
      auto src = x.Row(j);
      for (size_t col = 0; col < c; ++col) out[col] += scale * src[col];
    }
    auto self = x.Row(i);
    for (size_t col = 0; col < c; ++col) out[col] += 0.5 * self[col];
  }
}

}  // namespace

SpectralResult SpectralClustering(const DenseMatrix& points,
                                  const SpectralOptions& opts) {
  const size_t n = points.rows();
  LACA_CHECK(n >= 2 && points.cols() > 0,
             "spectral clustering needs at least two points");
  LACA_CHECK(opts.num_clusters >= 1 && opts.num_clusters <= n,
             "num_clusters must be in [1, n]");
  LACA_CHECK(opts.knn >= 1, "knn must be >= 1");
  LACA_CHECK(opts.power_iterations >= 1, "power_iterations must be >= 1");

  SimilarityGraph graph = BuildKnnGraph(points, opts.knn);

  // Block subspace iteration with Rayleigh–Ritz extraction for the top
  // num_clusters eigenvectors of the shifted affinity. The block buffer
  // (extra columns beyond c) is what makes this converge in a few hundred
  // rounds: the subspace error decays as (lambda_{b+1} / lambda_c)^t, and
  // neighborhood graphs have long near-degenerate eigenvalue plateaus right
  // below the indicator eigenvalues.
  const uint32_t c = opts.num_clusters;
  const uint32_t block = static_cast<uint32_t>(
      std::min<size_t>(n, static_cast<size_t>(2) * c + 8));
  Rng rng(opts.seed);
  DenseMatrix x(n, block);
  for (double& v : x.data()) v = rng.Normal();
  x = QrOrthonormal(x);
  DenseMatrix y(n, block);
  for (int iter = 0; iter < opts.power_iterations; ++iter) {
    MultiplyShiftedAffinity(graph, x, &y);
    x = QrOrthonormal(y);
  }

  // Rayleigh–Ritz: B = X^T (A X) is symmetric PSD (the shift keeps A PSD),
  // so its SVD is its eigendecomposition; the top-c Ritz vectors X U_c are
  // the converged eigenvector estimates.
  MultiplyShiftedAffinity(graph, x, &y);
  DenseMatrix b = x.TransposedMultiply(y);
  SvdResult eig = JacobiSvd(b);
  DenseMatrix top(block, c);
  for (uint32_t i = 0; i < block; ++i) {
    for (uint32_t j = 0; j < c; ++j) top(i, j) = eig.u(i, j);
  }

  // Ng–Jordan–Weiss: row-normalize the spectral embedding.
  SpectralResult result;
  result.embedding = x.Multiply(top);
  for (size_t i = 0; i < n; ++i) {
    auto row = result.embedding.Row(i);
    double norm = 0.0;
    for (double v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& v : row) v /= norm;
    }
  }

  KMeansOptions kopts = opts.kmeans;
  kopts.k = c;
  kopts.seed = opts.seed + 1;
  result.assignment = KMeans(result.embedding, kopts).assignment;
  return result;
}

}  // namespace laca
