// DBSCAN (density-based clustering) over dense point rows.
//
// The "(DBSCAN)" extraction mode of the Table V embedding baselines: cluster
// all embedding vectors globally, then read off the cluster containing the
// seed. Region queries are brute force (O(n^2 dim) total), which is why the
// experiment runner gates this extraction to the smaller datasets — exactly
// the "-" pattern of the paper's Table V.
#ifndef LACA_CLUSTERING_DBSCAN_HPP_
#define LACA_CLUSTERING_DBSCAN_HPP_

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace laca {

/// Cluster id assigned to noise points.
inline constexpr uint32_t kDbscanNoise = static_cast<uint32_t>(-1);

/// Options for Dbscan.
struct DbscanOptions {
  /// Neighborhood radius (Euclidean).
  double eps = 0.5;
  /// Minimum neighborhood size (including the point itself) for a core point.
  uint32_t min_pts = 8;
};

/// Outcome of a DBSCAN run.
struct DbscanResult {
  /// Cluster id per row, or kDbscanNoise.
  std::vector<uint32_t> assignment;
  uint32_t num_clusters = 0;
  size_t num_noise = 0;
};

/// Classic DBSCAN: BFS over core points' eps-neighborhoods. Deterministic.
/// Throws std::invalid_argument on bad options or empty input.
DbscanResult Dbscan(const DenseMatrix& points, const DbscanOptions& opts);

/// The standard k-dist heuristic for picking eps: the `min_pts`-th smallest
/// distance from each of `sample_size` sampled points, upper-quartiled.
/// Returns 0 for degenerate inputs (all points identical).
double EstimateDbscanEps(const DenseMatrix& points, uint32_t min_pts,
                         size_t sample_size = 256, uint64_t seed = 1);

}  // namespace laca

#endif  // LACA_CLUSTERING_DBSCAN_HPP_
