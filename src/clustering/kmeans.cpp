#include "clustering/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace laca {
namespace {

double DistanceSq(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

/// k-means++: each next center is sampled proportionally to the squared
/// distance from the nearest center chosen so far.
DenseMatrix PlusPlusInit(const DenseMatrix& points, uint32_t k, Rng* rng) {
  const size_t n = points.rows(), dim = points.cols();
  DenseMatrix centers(k, dim);
  std::vector<double> dist_sq(n, std::numeric_limits<double>::max());

  size_t first = rng->UniformInt(n);
  std::copy_n(points.Row(first).data(), dim, centers.Row(0).data());

  for (uint32_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      dist_sq[i] =
          std::min(dist_sq[i], DistanceSq(points.Row(i), centers.Row(c - 1)));
      total += dist_sq[i];
    }
    size_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng->Uniform() * total;
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += dist_sq[i];
        if (target < acc) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformInt(n);  // all points coincide with centers
    }
    std::copy_n(points.Row(chosen).data(), dim, centers.Row(c).data());
  }
  return centers;
}

}  // namespace

KMeansResult KMeans(const DenseMatrix& points, const KMeansOptions& opts) {
  const size_t n = points.rows(), dim = points.cols();
  LACA_CHECK(n > 0 && dim > 0, "k-means input must be non-empty");
  LACA_CHECK(opts.k >= 1 && opts.k <= n,
             "k must be in [1, number of points]");
  LACA_CHECK(opts.max_iterations >= 1, "max_iterations must be >= 1");

  Rng rng(opts.seed);
  KMeansResult result;
  result.centers = PlusPlusInit(points, opts.k, &rng);
  result.assignment.assign(n, 0);

  std::vector<uint32_t> counts(opts.k, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    result.iterations = iter;
    // Assignment step.
    result.inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < opts.k; ++c) {
        double d = DistanceSq(points.Row(i), result.centers.Row(c));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      result.inertia += best;
    }

    // Update step.
    std::fill(counts.begin(), counts.end(), 0u);
    std::fill(result.centers.data().begin(), result.centers.data().end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t c = result.assignment[i];
      ++counts[c];
      auto center = result.centers.Row(c);
      auto row = points.Row(i);
      for (size_t j = 0; j < dim; ++j) center[j] += row[j];
    }
    for (uint32_t c = 0; c < opts.k; ++c) {
      if (counts[c] == 0) continue;  // handled below, after averaging
      auto center = result.centers.Row(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (size_t j = 0; j < dim; ++j) center[j] *= inv;
    }
    for (uint32_t c = 0; c < opts.k; ++c) {
      if (counts[c] > 0) continue;
      // Re-seed an empty cluster with the point farthest from its (already
      // averaged, necessarily non-empty) assigned center.
      size_t farthest = 0;
      double worst = -1.0;
      for (size_t i = 0; i < n; ++i) {
        double d = DistanceSq(points.Row(i),
                              result.centers.Row(result.assignment[i]));
        if (d > worst) {
          worst = d;
          farthest = i;
        }
      }
      std::copy_n(points.Row(farthest).data(), dim,
                  result.centers.Row(c).data());
    }

    if (prev_inertia - result.inertia <=
        opts.tolerance * std::max(prev_inertia, 1e-300)) {
      break;
    }
    prev_inertia = result.inertia;
  }
  return result;
}

}  // namespace laca
