#include "clustering/dbscan.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <span>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace laca {
namespace {

double DistanceSq(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

std::vector<uint32_t> RegionQuery(const DenseMatrix& points, size_t center,
                                  double eps_sq) {
  std::vector<uint32_t> hits;
  auto row = points.Row(center);
  for (size_t i = 0; i < points.rows(); ++i) {
    if (DistanceSq(row, points.Row(i)) <= eps_sq) {
      hits.push_back(static_cast<uint32_t>(i));
    }
  }
  return hits;
}

}  // namespace

DbscanResult Dbscan(const DenseMatrix& points, const DbscanOptions& opts) {
  const size_t n = points.rows();
  LACA_CHECK(n > 0 && points.cols() > 0, "DBSCAN input must be non-empty");
  LACA_CHECK(opts.eps > 0.0, "eps must be positive");
  LACA_CHECK(opts.min_pts >= 1, "min_pts must be >= 1");

  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-2);
  DbscanResult result;
  result.assignment.assign(n, kUnvisited);
  const double eps_sq = opts.eps * opts.eps;

  for (size_t p = 0; p < n; ++p) {
    if (result.assignment[p] != kUnvisited) continue;
    std::vector<uint32_t> neighborhood = RegionQuery(points, p, eps_sq);
    if (neighborhood.size() < opts.min_pts) {
      result.assignment[p] = kDbscanNoise;  // may be claimed by a core later
      continue;
    }
    const uint32_t cluster = result.num_clusters++;
    result.assignment[p] = cluster;
    std::deque<uint32_t> frontier(neighborhood.begin(), neighborhood.end());
    while (!frontier.empty()) {
      const uint32_t q = frontier.front();
      frontier.pop_front();
      if (result.assignment[q] == kDbscanNoise) {
        result.assignment[q] = cluster;  // border point, not expanded
        continue;
      }
      if (result.assignment[q] != kUnvisited) continue;
      result.assignment[q] = cluster;
      std::vector<uint32_t> q_hood = RegionQuery(points, q, eps_sq);
      if (q_hood.size() >= opts.min_pts) {
        frontier.insert(frontier.end(), q_hood.begin(), q_hood.end());
      }
    }
  }

  for (uint32_t a : result.assignment) {
    if (a == kDbscanNoise) ++result.num_noise;
  }
  return result;
}

double EstimateDbscanEps(const DenseMatrix& points, uint32_t min_pts,
                         size_t sample_size, uint64_t seed) {
  const size_t n = points.rows();
  LACA_CHECK(n > 0 && points.cols() > 0, "input must be non-empty");
  LACA_CHECK(min_pts >= 1, "min_pts must be >= 1");
  min_pts = static_cast<uint32_t>(
      std::min<size_t>(min_pts, n > 1 ? n - 1 : 1));

  Rng rng(seed);
  sample_size = std::min(sample_size, n);
  std::vector<double> kth_dist;
  kth_dist.reserve(sample_size);
  std::vector<double> dists(n);
  for (size_t s = 0; s < sample_size; ++s) {
    const size_t p = (sample_size == n) ? s : rng.UniformInt(n);
    auto row = points.Row(p);
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      if (i == p) continue;
      dists[count++] = DistanceSq(row, points.Row(i));
    }
    if (count == 0) {  // single-point input
      kth_dist.push_back(0.0);
      continue;
    }
    std::nth_element(dists.begin(), dists.begin() + (min_pts - 1),
                     dists.begin() + static_cast<ptrdiff_t>(count));
    kth_dist.push_back(std::sqrt(dists[min_pts - 1]));
  }
  // Upper quartile of the k-dist curve: inside the "knee" for clustered data
  // but above the typical intra-cluster spacing.
  std::sort(kth_dist.begin(), kth_dist.end());
  return kth_dist[(kth_dist.size() * 3) / 4];
}

}  // namespace laca
