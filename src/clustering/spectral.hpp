// Spectral clustering (normalized-cut flavour) over dense point rows.
//
// The "(SC)" extraction mode of the Table V embedding baselines. Pipeline:
//   1. build a symmetrized k-NN similarity graph over the points with
//      Gaussian weights (bandwidth = mean k-NN distance);
//   2. compute the top eigenvectors of the normalized affinity
//      S = D^{-1/2} W D^{-1/2} by subspace (orthogonal) iteration, reusing
//      the library's Householder QR;
//   3. row-normalize the spectral embedding and run k-means on it
//      (Ng–Jordan–Weiss).
// Neighbor search is brute force (O(n^2 dim)), so the experiment runner
// gates this extraction to the smaller datasets, mirroring the "-" entries
// of the paper's Table V.
#ifndef LACA_CLUSTERING_SPECTRAL_HPP_
#define LACA_CLUSTERING_SPECTRAL_HPP_

#include <cstdint>
#include <vector>

#include "clustering/kmeans.hpp"
#include "la/matrix.hpp"

namespace laca {

/// Options for SpectralClustering.
struct SpectralOptions {
  /// Number of output clusters (and of spectral embedding dimensions).
  uint32_t num_clusters = 8;
  /// Neighbors per point in the similarity graph.
  uint32_t knn = 10;
  /// Block subspace-iteration rounds. The Rayleigh-Ritz extraction over a
  /// buffered block makes a few hundred rounds sufficient even on the long
  /// near-degenerate spectra of neighborhood graphs.
  int power_iterations = 200;
  /// k-means settings for the final step (its k is overridden by
  /// num_clusters).
  KMeansOptions kmeans;
  uint64_t seed = 1;
};

/// Outcome of a spectral clustering run.
struct SpectralResult {
  /// Cluster id per row, in [0, num_clusters).
  std::vector<uint32_t> assignment;
  /// Row-normalized n x num_clusters spectral embedding.
  DenseMatrix embedding;
};

/// Clusters the rows of `points`. Deterministic given the seeds. Throws
/// std::invalid_argument on bad options or empty input.
SpectralResult SpectralClustering(const DenseMatrix& points,
                                  const SpectralOptions& opts);

}  // namespace laca

#endif  // LACA_CLUSTERING_SPECTRAL_HPP_
