// Diffusion-based local graph clustering baselines (Table IV, group 1):
// PR-Nibble [15], APR-Nibble, and HK-Relax [16].
#ifndef LACA_BASELINES_LGC_HPP_
#define LACA_BASELINES_LGC_HPP_

#include "attr/attribute_matrix.hpp"
#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Options for PR-Nibble (approximate personalized PageRank push).
struct PrNibbleOptions {
  /// Walk probability (same convention as DiffusionOptions::alpha).
  double alpha = 0.8;
  /// Push threshold; support and cost are O(1/((1-alpha) epsilon)).
  double epsilon = 1e-6;
};

/// Runs the Andersen–Chung–Lang push from `seed` and returns the
/// degree-normalized scores q_u / d(u) used for ranking / sweeping.
/// Works on weighted graphs too (APR-Nibble passes a reweighted graph).
SparseVector PrNibble(const Graph& graph, NodeId seed,
                      const PrNibbleOptions& opts);

/// APR-Nibble: PR-Nibble on the Gaussian-kernel attribute-reweighted graph.
/// Build the weighted graph once per dataset with GaussianReweight() and pass
/// it here; provided as a convenience wrapper.
SparseVector AprNibble(const Graph& reweighted_graph, NodeId seed,
                       const PrNibbleOptions& opts);

/// Options for HK-Relax (heat-kernel PageRank push).
struct HkRelaxOptions {
  /// Heat kernel temperature t (the paper's baselines use small constants).
  double t = 5.0;
  /// Accuracy threshold; the stage-wise push drops per-node residues below
  /// epsilon * d(v) / (N+1) at each Taylor stage.
  double epsilon = 1e-4;
  /// Hard cap on the Taylor order (chosen automatically from t and epsilon).
  int max_order = 64;
};

/// Deterministic stage-wise approximation of the heat kernel diffusion
/// h = sum_k e^{-t} t^k/k! (e_s P^k): at each Taylor stage, nodes holding at
/// least (epsilon/(N+1)) d(v) stage mass push to their neighbors; smaller
/// residues are dropped, bounding the total error per node by epsilon d(v).
/// Returns degree-normalized scores h_u / d(u).
SparseVector HkRelax(const Graph& graph, NodeId seed,
                     const HkRelaxOptions& opts);

}  // namespace laca

#endif  // LACA_BASELINES_LGC_HPP_
