#include "baselines/linksim.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace laca {
namespace {

// Nodes within two hops of the seed (excluding the seed itself).
std::vector<NodeId> TwoHopCandidates(const Graph& graph, NodeId seed,
                                     size_t cap = 0) {
  std::unordered_set<NodeId> seen{seed};
  std::vector<NodeId> out;
  for (NodeId u : graph.Neighbors(seed)) {
    if (seen.insert(u).second) out.push_back(u);
  }
  size_t one_hop = out.size();
  for (size_t i = 0; i < one_hop; ++i) {
    for (NodeId w : graph.Neighbors(out[i])) {
      if (seen.insert(w).second) {
        out.push_back(w);
        if (cap > 0 && out.size() >= cap) return out;
      }
    }
  }
  return out;
}

}  // namespace

SparseVector LinkSimilarityScores(const Graph& graph, NodeId seed,
                                  LinkSimilarity kind) {
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  auto ns = graph.Neighbors(seed);
  std::unordered_set<NodeId> seed_nbrs(ns.begin(), ns.end());

  SparseVector out;
  for (NodeId v : TwoHopCandidates(graph, seed)) {
    double common = 0.0, score = 0.0;
    size_t cn = 0;
    for (NodeId w : graph.Neighbors(v)) {
      if (!seed_nbrs.count(w)) continue;
      ++cn;
      switch (kind) {
        case LinkSimilarity::kCommonNeighbors:
        case LinkSimilarity::kJaccard:
          common += 1.0;
          break;
        case LinkSimilarity::kAdamicAdar: {
          double d = graph.DegreeCount(w);
          if (d > 1.0) common += 1.0 / std::log(d);
          break;
        }
      }
    }
    if (cn == 0) continue;
    switch (kind) {
      case LinkSimilarity::kCommonNeighbors:
      case LinkSimilarity::kAdamicAdar:
        score = common;
        break;
      case LinkSimilarity::kJaccard: {
        double uni = static_cast<double>(ns.size()) +
                     static_cast<double>(graph.DegreeCount(v)) - common;
        score = uni > 0.0 ? common / uni : 0.0;
        break;
      }
    }
    if (score > 0.0) out.Add(v, score);
  }
  out.Compact();
  return out;
}

SparseVector SimRankScores(const Graph& graph, NodeId seed_node,
                           const SimRankOptions& opts) {
  LACA_CHECK(seed_node < graph.num_nodes(), "seed out of range");
  LACA_CHECK(opts.c > 0.0 && opts.c < 1.0, "C must be in (0,1)");
  LACA_CHECK(opts.num_walks > 0 && opts.walk_length > 0, "bad walk budget");
  Rng rng(opts.seed);

  // Pre-sample the seed-side walks once; candidates couple against them.
  std::vector<std::vector<NodeId>> seed_walks(opts.num_walks);
  for (auto& walk : seed_walks) {
    walk.resize(opts.walk_length + 1);
    walk[0] = seed_node;
    for (int t = 1; t <= opts.walk_length; ++t) {
      auto nbrs = graph.Neighbors(walk[t - 1]);
      walk[t] = nbrs[rng.UniformInt(nbrs.size())];
    }
  }

  SparseVector out;
  for (NodeId v : TwoHopCandidates(graph, seed_node, opts.max_candidates)) {
    double acc = 0.0;
    for (int w = 0; w < opts.num_walks; ++w) {
      NodeId cur = v;
      for (int t = 1; t <= opts.walk_length; ++t) {
        auto nbrs = graph.Neighbors(cur);
        cur = nbrs[rng.UniformInt(nbrs.size())];
        if (cur == seed_walks[w][t]) {  // first meeting at time t
          acc += std::pow(opts.c, t);
          break;
        }
      }
    }
    double score = acc / opts.num_walks;
    if (score > 0.0) out.Add(v, score);
  }
  out.Compact();
  return out;
}

}  // namespace laca
