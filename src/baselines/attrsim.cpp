#include "baselines/attrsim.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "diffusion/diffusion.hpp"

namespace laca {

SparseVector SimAttrScores(const AttributeMatrix& attrs, NodeId seed,
                           SnasMetric metric, double delta) {
  LACA_CHECK(seed < attrs.num_rows(), "seed out of range");
  LACA_CHECK(delta > 0.0, "delta must be positive");
  SparseVector out;
  for (NodeId v = 0; v < attrs.num_rows(); ++v) {
    if (v == seed) continue;
    double dot = attrs.Dot(seed, v);
    double score =
        metric == SnasMetric::kCosine ? dot : std::exp(dot / delta);
    if (score > 0.0) out.Add(v, score);
  }
  out.Compact();
  return out;
}

SparseVector AttriRankScores(const Graph& graph, const AttributeMatrix& attrs,
                             NodeId seed, const AttriRankOptions& opts) {
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  LACA_CHECK(attrs.num_rows() == graph.num_nodes(),
             "attribute rows must match node count");

  // Restart distribution: exp-cosine similarity of the top attribute peers.
  SparseVector sims =
      SimAttrScores(attrs, seed, SnasMetric::kExpCosine, opts.delta);
  sims.Add(seed, std::exp(1.0 / opts.delta));  // the seed itself
  sims.SortByValueDesc();
  SparseVector restart;
  double total = 0.0;
  size_t count = 0;
  for (const auto& e : sims.entries()) {
    if (count >= opts.restart_pool) break;
    restart.Add(e.index, e.value);
    total += e.value;
    ++count;
  }
  if (total <= 0.0) {
    restart = SparseVector::Unit(seed);
    total = 1.0;
  }
  for (auto& e : restart.mutable_entries()) e.value /= total;

  DiffusionEngine engine(graph);
  DiffusionOptions dopts;
  dopts.alpha = opts.alpha;
  dopts.epsilon = opts.epsilon;
  return engine.Adaptive(restart, dopts);
}

}  // namespace laca
