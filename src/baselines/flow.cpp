#include "baselines/flow.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace laca {

SparseVector FlowDiffusion(const Graph& graph, NodeId seed,
                           const FlowDiffusionOptions& opts) {
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  LACA_CHECK(opts.source_mass_factor > 0.0, "source_mass_factor must be > 0");

  double target_volume = opts.target_volume;
  if (target_volume <= 0.0) {
    double avg_degree = graph.TotalVolume() / graph.num_nodes();
    target_volume = static_cast<double>(opts.size_hint) * avg_degree;
  }
  const double source_mass = opts.source_mass_factor * target_volume;

  // Sparse state: potentials x and incoming mass m, both seed-local.
  std::unordered_map<NodeId, double> x, m;
  m[seed] = source_mass;
  std::deque<NodeId> active;
  std::unordered_map<NodeId, bool> queued;
  active.push_back(seed);
  queued[seed] = true;

  uint64_t updates = 0;
  while (!active.empty() && updates < opts.max_updates) {
    NodeId v = active.front();
    active.pop_front();
    queued[v] = false;
    double capacity = graph.Degree(v);
    double excess = m[v] - capacity;
    if (excess <= opts.tol * capacity) continue;
    // Raise x_v so that the excess is routed out: flow on edge (v,u) is
    // w_vu (x_v - x_u); raising x_v by delta sends w_vu * delta more to each
    // neighbor, d(v) * delta in total.
    double delta = excess / capacity;
    x[v] += delta;
    m[v] = capacity;
    auto nbrs = graph.Neighbors(v);
    auto wts = graph.NeighborWeights(v);
    for (size_t e = 0; e < nbrs.size(); ++e) {
      NodeId u = nbrs[e];
      double w = graph.is_weighted() ? wts[e] : 1.0;
      m[u] += w * delta;
      if (m[u] > graph.Degree(u) * (1.0 + opts.tol) && !queued[u]) {
        active.push_back(u);
        queued[u] = true;
      }
    }
    ++updates;
    // v may still be above capacity due to neighbors pushing back later; it
    // re-enters the queue through the neighbor loop when that happens.
  }

  SparseVector out;
  for (const auto& [v, val] : x) {
    if (val > 0.0) out.Add(v, val);
  }
  out.Compact();
  return out;
}

SparseVector Crd(const Graph& graph, NodeId seed, const CrdOptions& opts) {
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  LACA_CHECK(opts.height >= 1, "height must be >= 1");

  // Sparse push-relabel state local to the explored region.
  std::unordered_map<NodeId, double> mass;    // current mass at node
  std::unordered_map<NodeId, uint32_t> label; // push-relabel height
  // Flow already routed along each arc this round, keyed by (lo, hi) with a
  // sign convention: positive means lo -> hi.
  std::unordered_map<uint64_t, double> flow;
  auto arc_key = [&](NodeId a, NodeId b) {
    NodeId lo = std::min(a, b), hi = std::max(a, b);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  auto arc_flow = [&](NodeId from, NodeId to) {
    double f = flow[arc_key(from, to)];
    return from < to ? f : -f;
  };
  auto add_arc_flow = [&](NodeId from, NodeId to, double df) {
    flow[arc_key(from, to)] += (from < to) ? df : -df;
  };

  double source = 2.0 * graph.Degree(seed);
  mass[seed] = source;
  uint64_t operations = 0;

  for (uint32_t round = 0; round < opts.outer_iterations; ++round) {
    const double edge_capacity = std::pow(2.0, round + 1);
    flow.clear();
    // Unit-Flow: settle mass so every node holds at most d(v) (sink capacity),
    // pushing along admissible arcs (label(v) == label(u) + 1).
    std::deque<NodeId> active;
    std::unordered_map<NodeId, bool> queued;
    for (const auto& [v, mv] : mass) {
      if (mv > graph.Degree(v)) {
        active.push_back(v);
        queued[v] = true;
      }
    }
    while (!active.empty() && operations < opts.max_operations) {
      NodeId v = active.front();
      active.pop_front();
      queued[v] = false;
      double excess = mass[v] - graph.Degree(v);
      if (excess <= 1e-12) continue;
      uint32_t lv = label[v];
      if (lv >= opts.height) continue;  // stuck at the cap; keep its excess
      bool pushed = false;
      for (NodeId u : graph.Neighbors(v)) {
        if (excess <= 1e-12) break;
        // Admissible arcs only: label(v) == label(u) + 1.
        if (label[u] + 1 != lv) continue;
        double residual = edge_capacity - arc_flow(v, u);
        if (residual <= 1e-12) continue;
        // Push up to the receiver's remaining sink+buffer capacity.
        double room = 2.0 * graph.Degree(u) - mass[u];
        double df = std::min({excess, residual, std::max(room, 0.0)});
        if (df <= 1e-12) continue;
        add_arc_flow(v, u, df);
        mass[v] -= df;
        mass[u] += df;
        excess -= df;
        pushed = true;
        ++operations;
        if (mass[u] > graph.Degree(u) && !queued[u]) {
          active.push_back(u);
          queued[u] = true;
        }
      }
      if (excess > 1e-12) {
        if (!pushed) {
          ++label[v];
          ++operations;
        }
        if (label[v] < opts.height && !queued[v]) {
          active.push_back(v);
          queued[v] = true;
        }
      }
    }
    // Measure how much mass could not be settled below sink capacity.
    double overflow = 0.0, total = 0.0;
    for (const auto& [v, mv] : mass) {
      total += mv;
      overflow += std::max(mv - graph.Degree(v), 0.0);
    }
    if (overflow > opts.overflow_fraction * total) break;
    if (round + 1 < opts.outer_iterations) {
      // Capacity release: double all mass for the next round.
      for (auto& [v, mv] : mass) mv *= 2.0;
      for (auto& [v, lv] : label) lv = 0;
    }
  }

  SparseVector out;
  for (const auto& [v, mv] : mass) {
    if (mv > 0.0) out.Add(v, mv / graph.Degree(v));
  }
  out.Compact();
  return out;
}

}  // namespace laca
