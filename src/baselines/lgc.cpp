#include "baselines/lgc.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "diffusion/diffusion.hpp"

namespace laca {

SparseVector PrNibble(const Graph& graph, NodeId seed,
                      const PrNibbleOptions& opts) {
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  DiffusionEngine engine(graph);
  DiffusionOptions dopts;
  dopts.alpha = opts.alpha;
  dopts.epsilon = opts.epsilon;
  SparseVector q = engine.Greedy(SparseVector::Unit(seed), dopts);
  for (auto& e : q.mutable_entries()) e.value /= graph.Degree(e.index);
  return q;
}

SparseVector AprNibble(const Graph& reweighted_graph, NodeId seed,
                       const PrNibbleOptions& opts) {
  return PrNibble(reweighted_graph, seed, opts);
}

SparseVector HkRelax(const Graph& graph, NodeId seed,
                     const HkRelaxOptions& opts) {
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  LACA_CHECK(opts.t > 0.0, "t must be positive");
  LACA_CHECK(opts.epsilon > 0.0, "epsilon must be positive");

  // Taylor order N: smallest N with remaining tail mass < epsilon / 2.
  int order = 1;
  {
    double term = std::exp(-opts.t);  // c_0
    double acc = term;
    while (order < opts.max_order && 1.0 - acc > opts.epsilon / 2.0) {
      term *= opts.t / order;
      acc += term;
      ++order;
    }
  }
  const int n_stages = order;
  const double drop_threshold = opts.epsilon / static_cast<double>(n_stages + 1);

  const NodeId n = graph.num_nodes();
  std::vector<double> cur(n, 0.0), next(n, 0.0), x(n, 0.0);
  std::vector<NodeId> cur_support, next_support, x_support;
  cur[seed] = 1.0;
  cur_support.push_back(seed);
  x[seed] = 0.0;

  double coeff = std::exp(-opts.t);  // c_k = e^{-t} t^k / k!
  for (int k = 0; k <= n_stages; ++k) {
    // Accumulate this stage's contribution into the solution.
    for (NodeId v : cur_support) {
      if (cur[v] == 0.0) continue;
      if (x[v] == 0.0) x_support.push_back(v);
      x[v] += coeff * cur[v];
    }
    if (k == n_stages) break;
    // Push to the next stage, dropping sub-threshold residues.
    for (NodeId v : cur_support) {
      double mass = cur[v];
      cur[v] = 0.0;
      if (mass < drop_threshold * graph.Degree(v)) continue;
      auto nbrs = graph.Neighbors(v);
      if (graph.is_weighted()) {
        auto wts = graph.NeighborWeights(v);
        double scale = mass / graph.Degree(v);
        for (size_t e = 0; e < nbrs.size(); ++e) {
          NodeId u = nbrs[e];
          if (next[u] == 0.0) next_support.push_back(u);
          next[u] += scale * wts[e];
        }
      } else {
        double inc = mass / static_cast<double>(nbrs.size());
        for (NodeId u : nbrs) {
          if (next[u] == 0.0) next_support.push_back(u);
          next[u] += inc;
        }
      }
    }
    cur_support.clear();
    std::swap(cur, next);
    std::swap(cur_support, next_support);
    coeff *= opts.t / static_cast<double>(k + 1);
  }

  SparseVector out;
  for (NodeId v : x_support) {
    if (x[v] > 0.0) out.Add(v, x[v] / graph.Degree(v));
  }
  out.Compact();
  return out;
}

}  // namespace laca
