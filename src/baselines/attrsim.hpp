// Attribute-similarity baselines (Table IV, group 3): SimAttr (C) [56],
// SimAttr (E) [57], and AttriRank [58].
#ifndef LACA_BASELINES_ATTRSIM_HPP_
#define LACA_BASELINES_ATTRSIM_HPP_

#include "attr/attribute_matrix.hpp"
#include "attr/snas.hpp"
#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Scores every node by its attribute similarity to the seed: cosine
/// (kCosine) or exp(cosine / delta) (kExpCosine). The two variants induce the
/// same ranking (exp is monotone), which is why the paper's Table V reports
/// identical precisions for SimAttr (C) and SimAttr (E).
SparseVector SimAttrScores(const AttributeMatrix& attrs, NodeId seed,
                           SnasMetric metric, double delta = 1.0);

/// Options for the AttriRank-style baseline.
struct AttriRankOptions {
  /// RWR walk probability.
  double alpha = 0.8;
  /// Diffusion threshold.
  double epsilon = 1e-6;
  /// Restart-mass pool: the top-`restart_pool` nodes by attribute similarity
  /// to the seed receive similarity-proportional restart mass.
  size_t restart_pool = 256;
  double delta = 1.0;
};

/// AttriRank-lite: an unsupervised attribute-augmented ranking. The restart
/// distribution is proportional to exp-cosine attribute similarity between
/// the seed and its most attribute-similar nodes; scores are the resulting
/// RWR diffusion (a simplification of [58] preserving its
/// structure-plus-attribute ranking character; see DESIGN.md).
SparseVector AttriRankScores(const Graph& graph, const AttributeMatrix& attrs,
                             NodeId seed, const AttriRankOptions& opts);

}  // namespace laca

#endif  // LACA_BASELINES_ATTRSIM_HPP_
