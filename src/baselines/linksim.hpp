// Link-similarity baselines (Table IV, group 2): Jaccard, Adamic-Adar,
// Common-Neighbours [54], and single-source SimRank [55].
#ifndef LACA_BASELINES_LINKSIM_HPP_
#define LACA_BASELINES_LINKSIM_HPP_

#include <cstdint>

#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Which link-similarity index to score candidates with.
enum class LinkSimilarity {
  kCommonNeighbors,
  kJaccard,
  kAdamicAdar,
};

/// Scores the seed's 2-hop neighborhood with the chosen index. Nodes outside
/// the 2-hop ball necessarily score 0 under all three indices.
SparseVector LinkSimilarityScores(const Graph& graph, NodeId seed,
                                  LinkSimilarity kind);

/// Options for Monte-Carlo single-source SimRank.
struct SimRankOptions {
  /// Decay factor C of SimRank.
  double c = 0.6;
  /// Coupled walk pairs sampled per candidate.
  int num_walks = 64;
  /// Maximum walk length (SimRank series truncation).
  int walk_length = 8;
  /// Candidate pool cap (2-hop neighborhood truncated to this many nodes).
  size_t max_candidates = 20'000;
  uint64_t seed = 99;
};

/// Estimates s(seed, v) for candidates in the seed's 2-hop neighborhood via
/// the first-meeting-time formulation: s(a,b) = E[C^tau] over coupled
/// uniform reverse walks. Exact SimRank is O(n^2) memory; the paper likewise
/// evaluates SimRank only on small datasets.
SparseVector SimRankScores(const Graph& graph, NodeId seed_node,
                           const SimRankOptions& opts);

}  // namespace laca

#endif  // LACA_BASELINES_LINKSIM_HPP_
