// Network-embedding baselines (Table IV, group 4).
//
// The originals are full research systems with training loops; these are
// "lite" equivalents built on known closed forms so that the comparison
// exercises the same code path — a global preprocessing stage producing
// per-node vectors, followed by K-NN extraction around the seed:
//   * Node2Vec-lite: NetMF-style factorization of the positive PMI of
//     windowed random-walk co-occurrences (Qiu et al. show DeepWalk/node2vec
//     are equivalent to this factorization);
//   * SAGE-lite:  untrained GraphSAGE-mean == SGC-style feature propagation;
//   * PANE-lite:  forward-affinity (RWR-propagated attribute) factorization;
//   * CFANE-lite: fusion of the topology and attribute embeddings.
// See DESIGN.md §3 for the substitution rationale.
#ifndef LACA_BASELINES_EMBEDDING_HPP_
#define LACA_BASELINES_EMBEDDING_HPP_

#include <cstdint>

#include "attr/attribute_matrix.hpp"
#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"
#include "la/matrix.hpp"

namespace laca {

/// A per-node embedding (rows are L2-normalized).
struct Embedding {
  DenseMatrix vectors;  // n x dim
};

/// Options for Node2Vec-lite (random-walk co-occurrence factorization).
struct Node2VecOptions {
  int dim = 64;
  int walks_per_node = 4;
  int walk_length = 12;
  int window = 3;
  uint64_t seed = 17;
};

/// DeepWalk/node2vec equivalent: sample walks, build the windowed
/// co-occurrence PPMI matrix, and factorize it with the randomized k-SVD.
/// Preprocessing cost O(n * walks * length * window + nnz * dim).
Embedding Node2VecLite(const Graph& graph, const Node2VecOptions& opts);

/// Options for SAGE-lite (untrained mean-aggregation).
struct SageOptions {
  int dim = 64;
  int hops = 2;
  uint64_t seed = 18;
};

/// Untrained GraphSAGE-mean: reduce attributes to `dim` via k-SVD, then
/// apply `hops` rounds of (self + neighbor-mean) aggregation.
Embedding SageLite(const Graph& graph, const AttributeMatrix& attrs,
                   const SageOptions& opts);

/// Options for PANE-lite (forward-affinity propagation).
struct PaneOptions {
  int dim = 64;
  double alpha = 0.5;
  int iterations = 10;
  uint64_t seed = 19;
};

/// Forward affinity: F = sum_l (1-alpha) alpha^l P^l X_k over k-SVD-reduced
/// attributes — the random-walk attribute affinity PANE factorizes.
Embedding PaneLite(const Graph& graph, const AttributeMatrix& attrs,
                   const PaneOptions& opts);

/// Options for CFANE-lite (cross-fusion of topology and attribute channels).
struct CfaneOptions {
  Node2VecOptions node2vec;
  PaneOptions pane;
};

/// Concatenates the Node2Vec-lite (topology) and PANE-lite (attribute)
/// channels and re-normalizes — the fusion idea of CFANE.
Embedding CfaneLite(const Graph& graph, const AttributeMatrix& attrs,
                    const CfaneOptions& opts);

/// K-NN extraction: cosine similarity of every node's embedding to the
/// seed's (the paper's best-performing extraction for these baselines).
SparseVector KnnScores(const Embedding& embedding, NodeId seed);

}  // namespace laca

#endif  // LACA_BASELINES_EMBEDDING_HPP_
