#include "baselines/embedding.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/randomized_svd.hpp"

namespace laca {
namespace {

void NormalizeRows(DenseMatrix& m) {
  for (size_t i = 0; i < m.rows(); ++i) {
    auto row = m.Row(i);
    double norm_sq = 0.0;
    for (double v : row) norm_sq += v * v;
    if (norm_sq <= 0.0) continue;
    double inv = 1.0 / std::sqrt(norm_sq);
    for (double& v : row) v *= inv;
  }
}

// Reduces the sparse attributes to a dense n x dim panel U * Lambda.
DenseMatrix ReduceAttributes(const AttributeMatrix& attrs, int dim,
                             uint64_t seed) {
  KSvdOptions opts;
  opts.rank = dim;
  opts.seed = seed;
  opts.power_iterations = 4;  // embeddings need less spectral accuracy
  KSvdResult svd = RandomizedKSvd(attrs, opts);
  DenseMatrix out = std::move(svd.u);
  for (size_t i = 0; i < out.rows(); ++i) {
    auto row = out.Row(i);
    for (size_t j = 0; j < out.cols(); ++j) row[j] *= svd.sigma[j];
  }
  return out;
}

// One round of Y = P * X for dense X (row-major), unweighted or weighted.
DenseMatrix PropagateOnce(const Graph& graph, const DenseMatrix& x) {
  const size_t dim = x.cols();
  DenseMatrix y(x.rows(), dim);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    auto out = y.Row(v);
    auto nbrs = graph.Neighbors(v);
    if (nbrs.empty()) continue;
    if (graph.is_weighted()) {
      auto wts = graph.NeighborWeights(v);
      double inv = 1.0 / graph.Degree(v);
      for (size_t e = 0; e < nbrs.size(); ++e) {
        auto in = x.Row(nbrs[e]);
        double w = wts[e] * inv;
        for (size_t j = 0; j < dim; ++j) out[j] += w * in[j];
      }
    } else {
      double inv = 1.0 / static_cast<double>(nbrs.size());
      for (NodeId u : nbrs) {
        auto in = x.Row(u);
        for (size_t j = 0; j < dim; ++j) out[j] += inv * in[j];
      }
    }
  }
  return y;
}

}  // namespace

Embedding Node2VecLite(const Graph& graph, const Node2VecOptions& opts) {
  LACA_CHECK(opts.dim >= 1 && opts.walks_per_node >= 1 && opts.walk_length >= 2 &&
                 opts.window >= 1,
             "bad Node2Vec options");
  const NodeId n = graph.num_nodes();
  Rng rng(opts.seed);

  // Windowed co-occurrence counts from uniform random walks.
  std::unordered_map<uint64_t, uint32_t> pair_count;
  std::vector<double> node_count(n, 0.0);
  double total = 0.0;
  std::vector<NodeId> walk(opts.walk_length);
  for (NodeId start = 0; start < n; ++start) {
    for (int w = 0; w < opts.walks_per_node; ++w) {
      walk[0] = start;
      for (int t = 1; t < opts.walk_length; ++t) {
        auto nbrs = graph.Neighbors(walk[t - 1]);
        walk[t] = nbrs[rng.UniformInt(nbrs.size())];
      }
      for (int t = 0; t < opts.walk_length; ++t) {
        for (int o = 1; o <= opts.window && t + o < opts.walk_length; ++o) {
          NodeId a = walk[t], b = walk[t + o];
          if (a == b) continue;
          uint64_t key = (static_cast<uint64_t>(std::min(a, b)) << 32) |
                         std::max(a, b);
          ++pair_count[key];
          node_count[a] += 1.0;
          node_count[b] += 1.0;
          total += 2.0;
        }
      }
    }
  }

  // Positive PMI matrix (symmetric, stored as sparse rows), then k-SVD.
  std::vector<std::vector<AttributeMatrix::Entry>> rows(n);
  for (const auto& [key, cnt] : pair_count) {
    NodeId a = static_cast<NodeId>(key >> 32);
    NodeId b = static_cast<NodeId>(key & 0xffffffffu);
    double pmi = std::log(static_cast<double>(cnt) * total /
                          (node_count[a] * node_count[b]));
    if (pmi <= 0.0) continue;
    rows[a].emplace_back(b, pmi);
    rows[b].emplace_back(a, pmi);
  }
  AttributeMatrix ppmi(n, n);
  for (NodeId v = 0; v < n; ++v) ppmi.SetRow(v, std::move(rows[v]));

  KSvdOptions kopts;
  kopts.rank = opts.dim;
  kopts.seed = opts.seed + 1;
  kopts.power_iterations = 3;
  KSvdResult svd = RandomizedKSvd(ppmi, kopts);
  Embedding emb{std::move(svd.u)};
  // Scale by sqrt(sigma) (the NetMF convention), then normalize.
  for (size_t i = 0; i < emb.vectors.rows(); ++i) {
    auto row = emb.vectors.Row(i);
    for (size_t j = 0; j < emb.vectors.cols(); ++j) {
      row[j] *= std::sqrt(std::max(svd.sigma[j], 0.0));
    }
  }
  NormalizeRows(emb.vectors);
  return emb;
}

Embedding SageLite(const Graph& graph, const AttributeMatrix& attrs,
                   const SageOptions& opts) {
  LACA_CHECK(attrs.num_rows() == graph.num_nodes(),
             "attribute rows must match node count");
  LACA_CHECK(opts.dim >= 1 && opts.hops >= 1, "bad SAGE options");
  DenseMatrix h = ReduceAttributes(attrs, opts.dim, opts.seed);
  for (int hop = 0; hop < opts.hops; ++hop) {
    DenseMatrix agg = PropagateOnce(graph, h);
    // Mean of self and neighborhood representation.
    for (size_t i = 0; i < h.rows(); ++i) {
      auto self = h.Row(i);
      auto nbr = agg.Row(i);
      for (size_t j = 0; j < h.cols(); ++j) self[j] = 0.5 * (self[j] + nbr[j]);
    }
  }
  NormalizeRows(h);
  return Embedding{std::move(h)};
}

Embedding PaneLite(const Graph& graph, const AttributeMatrix& attrs,
                   const PaneOptions& opts) {
  LACA_CHECK(attrs.num_rows() == graph.num_nodes(),
             "attribute rows must match node count");
  LACA_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0, "alpha must be in (0,1)");
  DenseMatrix x = ReduceAttributes(attrs, opts.dim, opts.seed);
  DenseMatrix f(x.rows(), x.cols());
  DenseMatrix cur = x;
  double coeff = 1.0 - opts.alpha;
  for (int l = 0; l <= opts.iterations; ++l) {
    for (size_t i = 0; i < f.data().size(); ++i) {
      f.data()[i] += coeff * cur.data()[i];
    }
    if (l == opts.iterations) break;
    cur = PropagateOnce(graph, cur);
    coeff *= opts.alpha;
  }
  NormalizeRows(f);
  return Embedding{std::move(f)};
}

Embedding CfaneLite(const Graph& graph, const AttributeMatrix& attrs,
                    const CfaneOptions& opts) {
  Embedding topo = Node2VecLite(graph, opts.node2vec);
  Embedding attr = PaneLite(graph, attrs, opts.pane);
  Embedding fused{topo.vectors.ConcatColumns(attr.vectors)};
  NormalizeRows(fused.vectors);
  return fused;
}

SparseVector KnnScores(const Embedding& embedding, NodeId seed) {
  LACA_CHECK(seed < embedding.vectors.rows(), "seed out of range");
  SparseVector out;
  for (size_t v = 0; v < embedding.vectors.rows(); ++v) {
    if (v == seed) continue;
    double dot = embedding.vectors.RowDot(seed, v);
    if (dot > 0.0) out.Add(static_cast<NodeId>(v), dot);
  }
  out.Compact();
  return out;
}

}  // namespace laca
