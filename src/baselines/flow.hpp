// Flow-based local clustering baselines (Table IV, group 1):
// CRD [20], p-Norm Flow Diffusion (p=2) [21], and WFD [33].
#ifndef LACA_BASELINES_FLOW_HPP_
#define LACA_BASELINES_FLOW_HPP_

#include <cstdint>

#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Options for p-norm flow diffusion with p = 2.
struct FlowDiffusionOptions {
  /// Source mass placed on the seed, as a multiple of the target cluster
  /// volume estimate (the original paper seeds vol(C)-proportional mass).
  double source_mass_factor = 3.0;
  /// Estimated target cluster volume; 0 derives it from `size_hint`.
  double target_volume = 0.0;
  /// Target cluster size used when target_volume == 0 (multiplied by the
  /// graph's average degree).
  size_t size_hint = 100;
  /// Convergence: stop when no node's excess exceeds (1 + tol) * capacity.
  double tol = 1e-3;
  /// Safety cap on coordinate updates.
  uint64_t max_updates = 50'000'000;
};

/// Solves the p = 2 flow diffusion dual by Gauss–Southwell coordinate ascent
/// on node potentials x >= 0 (Fountoulakis et al., ICML'20): repeatedly pick
/// a node whose incoming mass exceeds its sink capacity d(v) and raise its
/// potential until the excess is routed to its neighbors. Returns the final
/// potentials, whose support is the candidate cluster (rank by value).
/// Works on weighted graphs; WFD [33] is this routine on the Gaussian-kernel
/// attribute-reweighted graph (see GaussianReweight()).
SparseVector FlowDiffusion(const Graph& graph, NodeId seed,
                           const FlowDiffusionOptions& opts);

/// Options for Capacity Releasing Diffusion.
struct CrdOptions {
  /// Height cap h of the Unit-Flow push-relabel subroutine.
  uint32_t height = 20;
  /// Outer iterations; source mass doubles each round (capacity releasing).
  uint32_t outer_iterations = 6;
  /// Stop doubling once at least this fraction of mass cannot be settled.
  double overflow_fraction = 0.1;
  /// Safety cap on push/relabel operations.
  uint64_t max_operations = 50'000'000;
};

/// Capacity Releasing Diffusion (Wang et al., ICML'17), simplified: rounds of
/// Unit-Flow (push-relabel with per-node sink capacity d(v), edge capacities
/// doubling each round) starting from 2 d(s) units at the seed. Returns the
/// settled mass per node divided by degree (rank by value).
SparseVector Crd(const Graph& graph, NodeId seed, const CrdOptions& opts);

}  // namespace laca

#endif  // LACA_BASELINES_FLOW_HPP_
