#include "graph/binary_io.hpp"

#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace laca {
namespace {

// Payload schemas (all counts precede their arrays):
//   graph:       u32 n | u8 weighted | u64 adj_size | u64 offsets[n+1]
//                | u32 adjacency[adj_size] | double weights[adj_size]?
//   attributes:  u32 n | u32 d | per row: u64 nnz, (u32 col, double val)*
//   communities: u32 num_nodes | u64 num_comms | per community:
//                u64 size, u32 members[size]
//   dataset:     graph | attributes | communities, concatenated.

void WriteGraphPayload(const Graph& graph, BinaryWriter* writer) {
  writer->WriteU32(graph.num_nodes());
  writer->WriteU8(graph.is_weighted() ? 1 : 0);
  writer->WriteU64(graph.adjacency().size());
  writer->WriteU64Array(graph.offsets());
  writer->WriteU32Array(graph.adjacency());
  if (graph.is_weighted()) writer->WriteDoubleArray(graph.weights());
}

Graph ReadGraphPayload(BinaryReader* reader) {
  const uint32_t n = reader->ReadU32();
  const bool weighted = reader->ReadU8() != 0;
  const uint64_t adj_size = reader->ReadU64();
  std::vector<uint64_t> offsets = reader->ReadU64Array(n + 1ull);
  std::vector<uint32_t> adjacency = reader->ReadU32Array(adj_size);
  std::vector<double> weights;
  if (weighted) weights = reader->ReadDoubleArray(adj_size);
  // The Graph constructor re-validates CSR invariants, so a payload that
  // passed the checksum but was written by a buggy producer still fails
  // loudly instead of yielding a malformed graph.
  return Graph(std::move(offsets), std::move(adjacency), std::move(weights));
}

void WriteAttributesPayload(const AttributeMatrix& attrs,
                            BinaryWriter* writer) {
  writer->WriteU32(attrs.num_rows());
  writer->WriteU32(attrs.num_cols());
  for (NodeId i = 0; i < attrs.num_rows(); ++i) {
    auto row = attrs.Row(i);
    writer->WriteU64(row.size());
    for (const auto& [col, val] : row) {
      writer->WriteU32(col);
      writer->WriteDouble(val);
    }
  }
}

// `expected_rows` < 0 skips the row-count cross-check (trusted-cache loads
// that have no graph to check against). When given, it is enforced BEFORE
// any row storage is allocated so a hostile header cannot size the matrix;
// `allow_empty` additionally accepts a 0-row section (datasets without an
// attribute matrix embed one with zero rows).
AttributeMatrix ReadAttributesPayload(BinaryReader* reader,
                                      int64_t expected_rows, bool allow_empty,
                                      const std::string& path) {
  const uint32_t n = reader->ReadU32();
  const uint32_t d = reader->ReadU32();
  LACA_CHECK(expected_rows < 0 || n == static_cast<uint64_t>(expected_rows) ||
                 (allow_empty && n == 0),
             path + " has " + std::to_string(n) +
                 " attribute rows but the graph has " +
                 std::to_string(expected_rows) + " nodes");
  // Every row occupies at least its u64 nnz field, so the row count can
  // never legitimately exceed Remaining()/8 — checked before the count
  // sizes the matrix (fuzz-found: u32-max rows in a 10-byte payload
  // allocated ~100 GiB of empty row vectors).
  LACA_CHECK(n <= reader->Remaining() / 8,
             path + " declares " + std::to_string(n) +
                 " attribute rows but only " +
                 std::to_string(reader->Remaining()) + " payload bytes remain");
  AttributeMatrix attrs(n, d);
  for (NodeId i = 0; i < n; ++i) {
    const uint64_t nnz = reader->ReadU64();
    // Each entry is u32 col + double val = 12 payload bytes; bound before
    // reserve (fuzz-found: nnz = 2^60 raised std::length_error — and
    // smaller still-huge values are allocation bombs).
    LACA_CHECK(nnz <= reader->Remaining() / 12,
               path + " row " + std::to_string(i) + " declares " +
                   std::to_string(nnz) + " entries but only " +
                   std::to_string(reader->Remaining()) +
                   " payload bytes remain");
    std::vector<AttributeMatrix::Entry> row;
    row.reserve(nnz);
    for (uint64_t e = 0; e < nnz; ++e) {
      uint32_t col = reader->ReadU32();
      double val = reader->ReadDouble();
      row.emplace_back(col, val);
    }
    attrs.SetRow(i, std::move(row));
  }
  return attrs;
}

void WriteCommunitiesPayload(const Communities& comms, NodeId num_nodes,
                             BinaryWriter* writer) {
  writer->WriteU32(num_nodes);
  writer->WriteU64(comms.members.size());
  for (const auto& members : comms.members) {
    writer->WriteU64(members.size());
    writer->WriteU32Array(members);
  }
}

// `expected_nodes` < 0 skips the node-count cross-check. When given, it is
// enforced BEFORE the per-node membership table is allocated — the declared
// node count drives that allocation with no payload bytes to back it, so it
// must never be trusted on an untrusted path.
Communities ReadCommunitiesPayload(BinaryReader* reader,
                                   int64_t expected_nodes,
                                   const std::string& path) {
  const uint32_t num_nodes = reader->ReadU32();
  LACA_CHECK(expected_nodes < 0 ||
                 num_nodes == static_cast<uint64_t>(expected_nodes),
             path + " covers " + std::to_string(num_nodes) +
                 " nodes but the graph has " + std::to_string(expected_nodes));
  const uint64_t num_comms = reader->ReadU64();
  // Every community occupies at least its u64 size field, so the community
  // count can never legitimately exceed Remaining()/8 — checked before it
  // drives the reserve (fuzz-found: num_comms = 2^60 raised
  // std::length_error).
  LACA_CHECK(num_comms <= reader->Remaining() / 8,
             path + " declares " + std::to_string(num_comms) +
                 " communities but only " + std::to_string(reader->Remaining()) +
                 " payload bytes remain");
  Communities comms;
  comms.node_comms.assign(num_nodes, {});
  comms.members.reserve(num_comms);
  for (uint64_t c = 0; c < num_comms; ++c) {
    const uint64_t size = reader->ReadU64();
    std::vector<NodeId> members = reader->ReadU32Array(size);
    for (NodeId m : members) {
      LACA_CHECK(m < num_nodes, "community member out of range");
      comms.node_comms[m].push_back(static_cast<uint32_t>(c));
    }
    comms.members.push_back(std::move(members));
  }
  return comms;
}

}  // namespace

void SaveGraphBinary(const Graph& graph, const std::string& path) {
  BinaryWriter writer;
  WriteGraphPayload(graph, &writer);
  writer.Save(path, BinaryKind::kGraph);
}

Graph LoadGraphBinary(const std::string& path) {
  BinaryReader reader(path, BinaryKind::kGraph);
  Graph graph = ReadGraphPayload(&reader);
  reader.ExpectEnd();
  return graph;
}

void SaveAttributesBinary(const AttributeMatrix& attrs,
                          const std::string& path) {
  BinaryWriter writer;
  WriteAttributesPayload(attrs, &writer);
  writer.Save(path, BinaryKind::kAttributes);
}

AttributeMatrix LoadAttributesBinary(const std::string& path) {
  BinaryReader reader(path, BinaryKind::kAttributes);
  AttributeMatrix attrs = ReadAttributesPayload(&reader, -1, false, path);
  reader.ExpectEnd();
  return attrs;
}

AttributeMatrix LoadAttributesBinary(const std::string& path,
                                     NodeId expected_rows) {
  BinaryReader reader(path, BinaryKind::kAttributes);
  AttributeMatrix attrs =
      ReadAttributesPayload(&reader, expected_rows, false, path);
  reader.ExpectEnd();
  return attrs;
}

void SaveCommunitiesBinary(const Communities& comms, NodeId num_nodes,
                           const std::string& path) {
  BinaryWriter writer;
  WriteCommunitiesPayload(comms, num_nodes, &writer);
  writer.Save(path, BinaryKind::kCommunities);
}

Communities LoadCommunitiesBinary(const std::string& path) {
  BinaryReader reader(path, BinaryKind::kCommunities);
  Communities comms = ReadCommunitiesPayload(&reader, -1, path);
  reader.ExpectEnd();
  return comms;
}

Communities LoadCommunitiesBinary(const std::string& path,
                                  NodeId expected_nodes) {
  BinaryReader reader(path, BinaryKind::kCommunities);
  Communities comms = ReadCommunitiesPayload(&reader, expected_nodes, path);
  reader.ExpectEnd();
  return comms;
}

void SaveDatasetBinary(const AttributedGraph& data, const std::string& path) {
  BinaryWriter writer;
  WriteGraphPayload(data.graph, &writer);
  WriteAttributesPayload(data.attributes, &writer);
  WriteCommunitiesPayload(data.communities, data.graph.num_nodes(), &writer);
  writer.Save(path, BinaryKind::kDataset);
}

AttributedGraph LoadDatasetBinary(const std::string& path) {
  BinaryReader reader(path, BinaryKind::kDataset);
  AttributedGraph data;
  // The graph's node count (itself bounded by the payload via the offsets
  // array) anchors the attribute and community sections, so their headers
  // are cross-checked before either section allocates.
  data.graph = ReadGraphPayload(&reader);
  const int64_t n = data.graph.num_nodes();
  data.attributes = ReadAttributesPayload(&reader, n, true, path);
  data.communities = ReadCommunitiesPayload(&reader, n, path);
  reader.ExpectEnd();
  return data;
}

}  // namespace laca
