#include "graph/stats.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace laca {

DegreeStats ComputeDegreeStats(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  LACA_CHECK(n > 0, "graph has no nodes");
  std::vector<NodeId> degrees(n);
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    degrees[v] = graph.DegreeCount(v);
    total += degrees[v];
  }
  std::sort(degrees.begin(), degrees.end());

  DegreeStats stats;
  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = total / static_cast<double>(n);
  stats.median = (n % 2 == 1)
                     ? degrees[n / 2]
                     : 0.5 * (degrees[n / 2 - 1] + degrees[n / 2]);
  const size_t top = std::max<size_t>(1, n / 100);
  double top_volume = 0.0;
  for (size_t i = n - top; i < n; ++i) top_volume += degrees[i];
  stats.top1pct_volume_share = total > 0.0 ? top_volume / total : 0.0;
  return stats;
}

std::vector<uint32_t> ConnectedComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<uint32_t> component(n, static_cast<uint32_t>(-1));
  uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] != static_cast<uint32_t>(-1)) continue;
    const uint32_t id = next++;
    component[start] = id;
    queue.push_back(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : graph.Neighbors(u)) {
        if (component[v] == static_cast<uint32_t>(-1)) {
          component[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return component;
}

uint32_t CountConnectedComponents(const Graph& graph) {
  if (graph.num_nodes() == 0) return 0;
  std::vector<uint32_t> component = ConnectedComponents(graph);
  return *std::max_element(component.begin(), component.end()) + 1;
}

double SampledClusteringCoefficient(const Graph& graph, size_t sample_size,
                                    uint64_t seed) {
  const NodeId n = graph.num_nodes();
  LACA_CHECK(n > 0, "graph has no nodes");
  Rng rng(seed);
  const bool exhaustive = sample_size >= n;
  const size_t count = exhaustive ? n : sample_size;

  double total = 0.0;
  for (size_t s = 0; s < count; ++s) {
    const NodeId v =
        exhaustive ? static_cast<NodeId>(s)
                   : static_cast<NodeId>(rng.UniformInt(n));
    auto nbrs = graph.Neighbors(v);
    if (nbrs.size() < 2) continue;
    uint64_t closed = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (graph.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    total += 2.0 * static_cast<double>(closed) /
             (static_cast<double>(nbrs.size()) *
              static_cast<double>(nbrs.size() - 1));
  }
  return total / static_cast<double>(count);
}

double EdgeHomophily(const Graph& graph, const Communities& communities) {
  LACA_CHECK(communities.node_comms.size() == graph.num_nodes(),
             "communities must cover all nodes");
  if (graph.num_edges() == 0) return 0.0;
  uint64_t same = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const auto& cu = communities.node_comms[u];
    for (NodeId v : graph.Neighbors(u)) {
      if (v <= u) continue;  // each undirected edge once
      const auto& cv = communities.node_comms[v];
      bool shared = false;
      for (uint32_t c : cu) {
        if (std::find(cv.begin(), cv.end(), c) != cv.end()) {
          shared = true;
          break;
        }
      }
      if (shared) ++same;
    }
  }
  return static_cast<double>(same) / static_cast<double>(graph.num_edges());
}

double AttributeAssortativity(const Graph& graph, const AttributeMatrix& x,
                              size_t sample_size, uint64_t seed) {
  LACA_CHECK(x.num_rows() == graph.num_nodes(),
             "attributes must cover all nodes");
  LACA_CHECK(graph.num_edges() > 0, "graph has no edges");
  Rng rng(seed);
  const NodeId n = graph.num_nodes();

  // Mean similarity across sampled edges.
  double edge_sim = 0.0;
  const size_t edge_samples = std::min<size_t>(sample_size, graph.num_edges());
  for (size_t s = 0; s < edge_samples; ++s) {
    // Sample an edge endpoint-uniformly via the CSR arrays.
    const uint64_t e = rng.UniformInt(graph.adjacency().size());
    const NodeId v = graph.adjacency()[e];
    // Binary-search the owning node u of slot e.
    const auto& offsets = graph.offsets();
    const NodeId u = static_cast<NodeId>(
        std::upper_bound(offsets.begin(), offsets.end(), e) -
        offsets.begin() - 1);
    edge_sim += x.Dot(u, v);
  }
  edge_sim /= static_cast<double>(edge_samples);

  // Mean similarity across sampled random pairs (the non-edge baseline;
  // collisions with actual edges are negligible on sparse graphs and
  // re-sampled anyway).
  double pair_sim = 0.0;
  size_t pairs = 0;
  for (size_t s = 0; s < sample_size && pairs < sample_size; ++s) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v || graph.HasEdge(u, v)) continue;
    pair_sim += x.Dot(u, v);
    ++pairs;
  }
  if (pairs > 0) pair_sim /= static_cast<double>(pairs);
  return edge_sim - pair_sim;
}

}  // namespace laca
