// Incremental construction of CSR graphs from edge streams.
#ifndef LACA_GRAPH_BUILDER_HPP_
#define LACA_GRAPH_BUILDER_HPP_

#include <vector>

#include "graph/graph.hpp"

namespace laca {

/// Accumulates undirected edges and produces a validated Graph.
///
/// Duplicate edges are merged (weights summed); self loops are dropped.
/// The builder is single-use: Build() consumes the accumulated state.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares `n` nodes (ids 0..n-1). Nodes referenced by AddEdge are
  /// also created implicitly.
  explicit GraphBuilder(NodeId n) : num_nodes_(n) {}

  /// Adds undirected edge {u, v} with weight `w` (> 0). Self loops (u == v)
  /// are silently ignored.
  void AddEdge(NodeId u, NodeId v, double w = 1.0);

  /// Number of nodes declared or referenced so far.
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of AddEdge calls that were retained (pre-dedup).
  size_t num_raw_edges() const { return edges_.size(); }

  /// Builds the graph. If `weighted` is false, merged edges get weight 1
  /// regardless of accumulated weights; otherwise duplicate weights are
  /// summed. Throws std::invalid_argument on inconsistencies.
  Graph Build(bool weighted = false);

 private:
  struct RawEdge {
    NodeId u, v;
    double w;
  };
  std::vector<RawEdge> edges_;
  NodeId num_nodes_ = 0;
};

}  // namespace laca

#endif  // LACA_GRAPH_BUILDER_HPP_
