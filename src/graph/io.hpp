// Text serialization for graphs, attributes, and ground-truth communities.
//
// Formats are line-oriented so that the public datasets the paper uses
// (SNAP-style edge lists, bag-of-words attribute files) can be converted and
// plugged in without code changes:
//   * edge list:   "u v [w]" per line, '#' comments ignored;
//   * attributes:  first line "n d", then "node col:val col:val ..." lines;
//   * communities: one line per community listing its member node ids.
#ifndef LACA_GRAPH_IO_HPP_
#define LACA_GRAPH_IO_HPP_

#include <string>

#include "attr/attribute_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Loads an undirected edge list. `num_nodes` = 0 infers n from the max id.
/// Throws std::invalid_argument on parse errors or unreadable files.
Graph LoadEdgeList(const std::string& path, NodeId num_nodes = 0,
                   bool weighted = false);

/// Writes the graph as "u v" (or "u v w") lines, one per undirected edge.
void SaveEdgeList(const Graph& graph, const std::string& path);

/// Loads a sparse attribute matrix; rows are L2-normalized after loading.
AttributeMatrix LoadAttributes(const std::string& path);

/// Writes the attribute matrix in the format accepted by LoadAttributes.
void SaveAttributes(const AttributeMatrix& attrs, const std::string& path);

/// Loads ground-truth communities (one line per community).
Communities LoadCommunities(const std::string& path, NodeId num_nodes);

/// Writes communities in the format accepted by LoadCommunities.
void SaveCommunities(const Communities& comms, const std::string& path);

}  // namespace laca

#endif  // LACA_GRAPH_IO_HPP_
