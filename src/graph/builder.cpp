#include "graph/builder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace laca {

void GraphBuilder::AddEdge(NodeId u, NodeId v, double w) {
  LACA_CHECK(w > 0.0, "edge weight must be positive");
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back(RawEdge{u, v, w});
  if (v >= num_nodes_) num_nodes_ = v + 1;
}

Graph GraphBuilder::Build(bool weighted) {
  // Sort canonical (u < v) edges, merge duplicates.
  std::sort(edges_.begin(), edges_.end(), [](const RawEdge& a, const RawEdge& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  size_t out = 0;
  for (size_t i = 0; i < edges_.size();) {
    RawEdge merged = edges_[i];
    ++i;
    while (i < edges_.size() && edges_[i].u == merged.u && edges_[i].v == merged.v) {
      merged.w += edges_[i].w;
      ++i;
    }
    if (!weighted) merged.w = 1.0;
    edges_[out++] = merged;
  }
  edges_.resize(out);

  const size_t n = num_nodes_;
  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (const RawEdge& e : edges_) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  std::vector<NodeId> adjacency(edges_.size() * 2);
  std::vector<double> weights;
  if (weighted) weights.resize(edges_.size() * 2);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const RawEdge& e : edges_) {
    adjacency[cursor[e.u]] = e.v;
    adjacency[cursor[e.v]] = e.u;
    if (weighted) {
      weights[cursor[e.u]] = e.w;
      weights[cursor[e.v]] = e.w;
    }
    ++cursor[e.u];
    ++cursor[e.v];
  }
  // Canonical edges were sorted by (u, v), so each adjacency list received its
  // lower-id endpoints in order; but upper-id endpoints may interleave. Sort
  // each list (with parallel weights when present).
  for (size_t v = 0; v < n; ++v) {
    EdgeIndex b = offsets[v], e = offsets[v + 1];
    if (weighted) {
      std::vector<std::pair<NodeId, double>> tmp;
      tmp.reserve(e - b);
      for (EdgeIndex i = b; i < e; ++i) tmp.emplace_back(adjacency[i], weights[i]);
      std::sort(tmp.begin(), tmp.end());
      for (EdgeIndex i = b; i < e; ++i) {
        adjacency[i] = tmp[i - b].first;
        weights[i] = tmp[i - b].second;
      }
    } else {
      std::sort(adjacency.begin() + b, adjacency.begin() + e);
    }
  }
  edges_.clear();
  return Graph(std::move(offsets), std::move(adjacency), std::move(weights));
}

}  // namespace laca
