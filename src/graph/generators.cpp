#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace laca {

std::vector<NodeId> Communities::GroundTruthCluster(NodeId seed) const {
  std::vector<NodeId> cluster;
  for (uint32_t c : node_comms[seed]) {
    cluster.insert(cluster.end(), members[c].begin(), members[c].end());
  }
  std::sort(cluster.begin(), cluster.end());
  cluster.erase(std::unique(cluster.begin(), cluster.end()), cluster.end());
  return cluster;
}

double Communities::AverageClusterSize() const {
  if (node_comms.empty()) return 0.0;
  double total = 0.0;
  for (NodeId v = 0; v < node_comms.size(); ++v) {
    if (node_comms[v].size() == 1) {
      total += static_cast<double>(members[node_comms[v][0]].size());
    } else {
      total += static_cast<double>(GroundTruthCluster(v).size());
    }
  }
  return total / static_cast<double>(node_comms.size());
}

namespace {

// Assigns nodes to communities. Returns per-community member lists and fills
// node_comms; every node belongs to >= 1 community.
void AssignCommunities(const AttributedSbmOptions& opts, Rng& rng,
                       Communities& comms) {
  const NodeId n = opts.num_nodes;
  const uint32_t k = opts.num_communities;
  comms.members.assign(k, {});
  comms.node_comms.assign(n, {});

  // Community target sizes: equal, or power-law skewed.
  std::vector<double> weight(k);
  for (uint32_t c = 0; c < k; ++c) {
    weight[c] = opts.community_size_skew > 0.0
                    ? std::pow(static_cast<double>(c + 1),
                               -opts.community_size_skew)
                    : 1.0;
  }
  double wsum = std::accumulate(weight.begin(), weight.end(), 0.0);
  std::vector<double> cum(k);
  double acc = 0.0;
  for (uint32_t c = 0; c < k; ++c) {
    acc += weight[c] / wsum;
    cum[c] = acc;
  }

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.Shuffle(order);

  // Primary membership: proportional slicing of the shuffled order.
  NodeId cursor = 0;
  for (uint32_t c = 0; c < k; ++c) {
    NodeId end = (c + 1 == k) ? n : static_cast<NodeId>(std::lround(cum[c] * n));
    end = std::min<NodeId>(std::max(end, cursor), n);
    if (end == cursor && cursor < n) end = cursor + 1;  // non-empty communities
    for (NodeId i = cursor; i < end; ++i) {
      comms.members[c].push_back(order[i]);
      comms.node_comms[order[i]].push_back(c);
    }
    cursor = end;
  }
  // Any tail nodes (rounding) join the last community.
  for (NodeId i = cursor; i < n; ++i) {
    comms.members[k - 1].push_back(order[i]);
    comms.node_comms[order[i]].push_back(k - 1);
  }

  // Overlapping memberships.
  if (opts.comms_per_node_max > 1) {
    for (NodeId v = 0; v < n; ++v) {
      uint32_t extra = static_cast<uint32_t>(rng.UniformInt(opts.comms_per_node_max));
      for (uint32_t t = 0; t < extra; ++t) {
        uint32_t c = static_cast<uint32_t>(rng.UniformInt(k));
        if (std::find(comms.node_comms[v].begin(), comms.node_comms[v].end(), c) ==
            comms.node_comms[v].end()) {
          comms.node_comms[v].push_back(c);
          comms.members[c].push_back(v);
        }
      }
    }
    for (auto& m : comms.members) std::sort(m.begin(), m.end());
  }
}

AttributeMatrix GenerateAttributes(const AttributedSbmOptions& opts, Rng& rng,
                                   const Communities& comms) {
  const NodeId n = opts.num_nodes;
  AttributeMatrix attrs(n, opts.attr_dim);
  if (opts.attr_dim == 0) return attrs;

  const uint32_t k = opts.num_communities;
  const uint32_t window = std::min(opts.topic_dims, opts.attr_dim);
  // Community topic windows spread across [0, attr_dim - window], overlapping
  // when k * window > attr_dim (mimics shared vocabulary between subjects).
  std::vector<uint32_t> window_start(k);
  for (uint32_t c = 0; c < k; ++c) {
    window_start[c] =
        (k <= 1) ? 0
                 : static_cast<uint32_t>(static_cast<uint64_t>(c) *
                                         (opts.attr_dim - window) / (k - 1));
  }

  for (NodeId v = 0; v < n; ++v) {
    std::vector<AttributeMatrix::Entry> row;
    row.reserve(opts.attr_nnz);
    const auto& cs = comms.node_comms[v];
    for (uint32_t t = 0; t < opts.attr_nnz; ++t) {
      uint32_t dim;
      if (rng.Bernoulli(opts.attr_noise) || cs.empty()) {
        dim = static_cast<uint32_t>(rng.UniformInt(opts.attr_dim));
      } else {
        uint32_t c = cs[rng.UniformInt(cs.size())];
        // Quadratic skew toward the head of the topic window ~ Zipf-ish.
        double u = rng.Uniform();
        uint32_t off = static_cast<uint32_t>(window * u * u);
        dim = window_start[c] + std::min(off, window - 1);
      }
      row.emplace_back(dim, 1.0 + 0.5 * rng.Uniform());
    }
    attrs.SetRow(v, std::move(row));
  }
  attrs.Normalize();
  return attrs;
}

}  // namespace

AttributedGraph GenerateAttributedSbm(const AttributedSbmOptions& opts) {
  LACA_CHECK(opts.num_nodes >= 2, "need at least 2 nodes");
  LACA_CHECK(opts.num_communities >= 1, "need at least 1 community");
  LACA_CHECK(opts.num_communities <= opts.num_nodes,
             "more communities than nodes");
  LACA_CHECK(opts.avg_degree > 0.0, "avg_degree must be positive");
  LACA_CHECK(opts.intra_fraction >= 0.0 && opts.intra_fraction <= 1.0,
             "intra_fraction must be in [0,1]");
  LACA_CHECK(opts.edge_noise >= 0.0 && opts.edge_noise <= 1.0,
             "edge_noise must be in [0,1]");
  LACA_CHECK(opts.attr_dim == 0 || opts.attr_nnz > 0,
             "attributed graphs need attr_nnz > 0");
  LACA_CHECK(opts.degree_skew >= 0.0, "degree_skew must be >= 0");

  Rng rng(opts.seed);
  AttributedGraph out;
  AssignCommunities(opts, rng, out.communities);
  const Communities& comms = out.communities;
  const NodeId n = opts.num_nodes;

  // Degree-skewed endpoint sampler: cumulative Zipf-like weights
  // w_v = (v + 1)^-skew, inverted by binary search. Node ids are unordered
  // relative to communities (AssignCommunities shuffles), so the hubs spread
  // across communities. With skew == 0 the sampler is bypassed entirely and
  // the RNG stream matches the historical generator bit for bit.
  std::vector<double> degree_cum;
  if (opts.degree_skew > 0.0) {
    degree_cum.resize(n);
    double acc = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      acc += std::pow(static_cast<double>(v + 1), -opts.degree_skew);
      degree_cum[v] = acc;
    }
  }
  auto sample_node = [&]() -> NodeId {
    if (degree_cum.empty()) return static_cast<NodeId>(rng.UniformInt(n));
    const double r = rng.Uniform() * degree_cum.back();
    return static_cast<NodeId>(
        std::lower_bound(degree_cum.begin(), degree_cum.end(), r) -
        degree_cum.begin());
  };

  GraphBuilder builder(n);
  std::vector<uint32_t> degree(n, 0);
  auto add_edge = [&](NodeId u, NodeId v) {
    if (u == v) return;
    builder.AddEdge(u, v);
    ++degree[u];
    ++degree[v];
  };

  const uint64_t target_edges =
      static_cast<uint64_t>(opts.num_nodes * opts.avg_degree / 2.0);
  for (uint64_t e = 0; e < target_edges; ++e) {
    NodeId u = sample_node();
    NodeId v;
    if (rng.Bernoulli(opts.edge_noise)) {
      // Noisy link: both endpoints (degree-weighted) random.
      u = sample_node();
      v = sample_node();
    } else if (rng.Bernoulli(opts.intra_fraction)) {
      const auto& cs = comms.node_comms[u];
      const auto& m = comms.members[cs[rng.UniformInt(cs.size())]];
      v = m[rng.UniformInt(m.size())];
    } else {
      v = sample_node();
    }
    add_edge(u, v);
  }
  // Attach isolated nodes to a random member of one of their communities so
  // diffusion from any seed is well-defined.
  for (NodeId v = 0; v < n; ++v) {
    if (degree[v] > 0) continue;
    const auto& m = comms.members[comms.node_comms[v][0]];
    NodeId u = m[rng.UniformInt(m.size())];
    if (u == v) u = (v + 1) % n;
    add_edge(v, u);
  }
  out.graph = builder.Build();
  out.attributes = GenerateAttributes(opts, rng, comms);
  return out;
}

Graph GenerateErdosRenyi(NodeId n, double avg_degree, uint64_t seed) {
  LACA_CHECK(n >= 2, "need at least 2 nodes");
  Rng rng(seed);
  GraphBuilder builder(n);
  const uint64_t target_edges = static_cast<uint64_t>(n * avg_degree / 2.0);
  for (uint64_t e = 0; e < target_edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u != v) builder.AddEdge(u, v);
  }
  // Connect isolated nodes in a ring step.
  Graph g = builder.Build();
  GraphBuilder fix(n);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : g.Neighbors(v)) {
      if (u > v) fix.AddEdge(v, u);
    }
    if (g.DegreeCount(v) == 0) fix.AddEdge(v, (v + 1) % n);
  }
  return fix.Build();
}

Graph GenerateBarabasiAlbert(NodeId n, uint32_t m, uint64_t seed) {
  LACA_CHECK(n > m && m >= 1, "need n > m >= 1");
  Rng rng(seed);
  GraphBuilder builder(n);
  // Endpoint pool: each node id appears once per incident edge, so uniform
  // sampling from the pool is degree-proportional (preferential attachment).
  std::vector<NodeId> pool;
  pool.reserve(2 * static_cast<size_t>(n) * m);
  // Seed clique over the first m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      builder.AddEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    for (uint32_t e = 0; e < m; ++e) {
      NodeId u = pool[rng.UniformInt(pool.size())];
      if (u == v) u = pool[rng.UniformInt(pool.size())];
      if (u == v) continue;
      builder.AddEdge(v, u);
      pool.push_back(v);
      pool.push_back(u);
    }
  }
  return builder.Build();
}

Graph Fig4ExampleGraph() {
  // Paper Fig. 4 (v1..v10 -> 0..9): v1-{v2,v3,v4,v5}, v2-{v3,v4},
  // v5-{v6,v7,v8,v9}, v6-v10. Degrees: d(v1)=4, d(v2)=3, d(v3)=d(v4)=2,
  // d(v5)=5, matching the running example in Section IV-A.
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(0, 4);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(4, 5);
  b.AddEdge(4, 6);
  b.AddEdge(4, 7);
  b.AddEdge(4, 8);
  b.AddEdge(5, 9);
  return b.Build();
}

}  // namespace laca
