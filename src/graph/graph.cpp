#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace laca {

uint64_t Graph::NextInstanceId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;  // ids start at 1
}

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> adjacency,
             std::vector<double> weights)
    : offsets_(std::move(offsets)),
      adjacency_(std::move(adjacency)),
      weights_(std::move(weights)) {
  LACA_CHECK(!offsets_.empty(), "offsets must contain at least one entry");
  LACA_CHECK(offsets_.front() == 0, "offsets must start at 0");
  LACA_CHECK(offsets_.back() == adjacency_.size(),
             "offsets must end at adjacency size");
  LACA_CHECK(adjacency_.size() % 2 == 0,
             "undirected graph must store each edge twice");
  LACA_CHECK(weights_.empty() || weights_.size() == adjacency_.size(),
             "weights must be empty or parallel to adjacency");
  const size_t n = offsets_.size() - 1;
  // The full offsets array must be validated before ANY adjacency indexing:
  // with front==0 and back==size checked above, monotonicity bounds every
  // middle offset. Fuzz-found: interleaving the two scans let offsets
  // [0, 2, 0] over an empty adjacency read out of bounds at v=0 before the
  // v=1 monotonicity check could reject the payload.
  for (size_t v = 0; v < n; ++v) {
    LACA_CHECK(offsets_[v] <= offsets_[v + 1], "offsets must be non-decreasing");
  }
  for (size_t v = 0; v < n; ++v) {
    for (EdgeIndex e = offsets_[v]; e + 1 < offsets_[v + 1]; ++e) {
      LACA_CHECK(adjacency_[e] < adjacency_[e + 1],
                 "adjacency lists must be sorted and duplicate-free");
    }
  }
  for (NodeId u : adjacency_) {
    LACA_CHECK(u < n, "adjacency entry out of range");
  }
  for (double w : weights_) {
    LACA_CHECK(w > 0.0, "edge weights must be strictly positive");
  }

  degree_.resize(n);
  degree_count_.resize(n);
  for (size_t v = 0; v < n; ++v) {
    degree_count_[v] = static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
    if (weights_.empty()) {
      degree_[v] = static_cast<double>(degree_count_[v]);
    } else {
      double d = 0.0;
      for (EdgeIndex e = offsets_[v]; e < offsets_[v + 1]; ++e) d += weights_[e];
      degree_[v] = d;
    }
    total_volume_ += degree_[v];
  }
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0;
  if (weights_.empty()) return 1.0;
  return weights_[offsets_[u] + (it - nbrs.begin())];
}

double Graph::Volume(std::span<const NodeId> nodes) const {
  double vol = 0.0;
  for (NodeId v : nodes) vol += degree_[v];
  return vol;
}

NodeId Graph::MaxDegree() const {
  NodeId best = 0;
  for (NodeId c : degree_count_) best = std::max(best, c);
  return best;
}

}  // namespace laca
