// Shared line-oriented parsing helpers for the text I/O translation units.
// Internal to src/graph — not installed with the public headers.
#ifndef LACA_GRAPH_IO_INTERNAL_HPP_
#define LACA_GRAPH_IO_INTERNAL_HPP_

#include <cctype>
#include <fstream>
#include <string>

#include "common/error.hpp"

namespace laca {
namespace io_internal {

inline std::ifstream OpenForRead(const std::string& path) {
  std::ifstream in(path);
  LACA_CHECK(in.good(), "cannot open file for reading: " + path);
  return in;
}

inline std::ofstream OpenForWrite(const std::string& path) {
  std::ofstream out(path);
  LACA_CHECK(out.good(), "cannot open file for writing: " + path);
  return out;
}

/// True for lines that are blank or start (after whitespace) with `marker`.
inline bool IsCommentOrBlank(const std::string& line, char marker = '#') {
  for (char c : line) {
    if (c == marker) return true;
    if (!isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// "path:line" for error messages.
inline std::string At(const std::string& path, size_t line_no) {
  return path + ":" + std::to_string(line_no);
}

}  // namespace io_internal
}  // namespace laca

#endif  // LACA_GRAPH_IO_INTERNAL_HPP_
