#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "graph/builder.hpp"
#include "graph/io_internal.hpp"

namespace laca {

using io_internal::IsCommentOrBlank;
using io_internal::OpenForRead;
using io_internal::OpenForWrite;

namespace {

// Location string for parse diagnostics: "path:line".
std::string At(const std::string& path, size_t line_no) {
  return path + ":" + std::to_string(line_no);
}

// Strict node-id token parse. istream extraction into an unsigned silently
// wraps "-1" to 2^64-1 (and std::stoul does the same), which either explodes
// the implied node count or truncates into a bogus id — so ids are parsed
// whole-token with an explicit NodeId range check.
NodeId ParseNodeId(const std::string& tok, const char* what,
                   const std::string& path, size_t line_no) {
  std::optional<uint64_t> id = ParseU64(tok);
  LACA_CHECK(id.has_value(),
             std::string("bad ") + what + " '" + tok + "' at " + At(path, line_no));
  LACA_CHECK(*id <= std::numeric_limits<NodeId>::max(),
             std::string(what) + " '" + tok + "' out of range at " +
                 At(path, line_no));
  return static_cast<NodeId>(*id);
}

}  // namespace

Graph LoadEdgeList(const std::string& path, NodeId num_nodes, bool weighted) {
  std::ifstream in = OpenForRead(path);
  GraphBuilder builder(num_nodes);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    std::string ut, vt;
    LACA_CHECK(static_cast<bool>(ls >> ut >> vt),
               "bad edge at " + At(path, line_no));
    const NodeId u = ParseNodeId(ut, "edge endpoint", path, line_no);
    const NodeId v = ParseNodeId(vt, "edge endpoint", path, line_no);
    double w = 1.0;
    if (weighted) {
      std::string wt;
      if (ls >> wt) {
        std::optional<double> parsed = ParseF64(wt);
        LACA_CHECK(parsed.has_value() && *parsed > 0.0,
                   "bad edge weight '" + wt + "' at " + At(path, line_no));
        w = *parsed;
      }
    }
    builder.AddEdge(u, v, w);
  }
  return builder.Build(weighted);
}

void SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= u) continue;  // emit each undirected edge once
      out << u << ' ' << nbrs[i];
      if (graph.is_weighted()) out << ' ' << wts[i];
      out << '\n';
    }
  }
  LACA_CHECK(out.good(), "write failure: " + path);
}

AttributeMatrix LoadAttributes(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::string line;
  size_t line_no = 0;
  uint64_t n = 0, d = 0;
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    std::string nt, dt;
    LACA_CHECK(static_cast<bool>(ls >> nt >> dt),
               "bad header at " + At(path, line_no));
    // Parsed strictly: a negative or garbage header dimension must not wrap
    // into a multi-gigabyte allocation.
    std::optional<uint64_t> np = ParseU64(nt), dp = ParseU64(dt);
    LACA_CHECK(np.has_value() && dp.has_value(),
               "bad header '" + nt + " " + dt + "' at " + At(path, line_no));
    LACA_CHECK(*np <= std::numeric_limits<NodeId>::max() &&
                   *dp <= std::numeric_limits<uint32_t>::max(),
               "header dimensions out of range at " + At(path, line_no));
    n = *np;
    d = *dp;
    have_header = true;
    break;
  }
  LACA_CHECK(have_header && n > 0 && d > 0,
             "attribute header missing in " + path);
  AttributeMatrix attrs(static_cast<NodeId>(n), static_cast<uint32_t>(d));
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    std::string node_tok;
    LACA_CHECK(static_cast<bool>(ls >> node_tok),
               "bad attribute row at " + At(path, line_no));
    const NodeId node = ParseNodeId(node_tok, "attribute node id", path, line_no);
    LACA_CHECK(node < n, "attribute node id '" + node_tok +
                             "' out of range at " + At(path, line_no));
    std::vector<AttributeMatrix::Entry> row;
    std::string tok;
    while (ls >> tok) {
      size_t colon = tok.find(':');
      LACA_CHECK(colon != std::string::npos && colon > 0 &&
                     colon + 1 < tok.size(),
                 "expected col:val, got '" + tok + "' at " + At(path, line_no));
      std::optional<uint64_t> col = ParseU64(tok.substr(0, colon));
      LACA_CHECK(col.has_value() && *col < d,
                 "bad attribute column in '" + tok + "' at " +
                     At(path, line_no));
      std::optional<double> val = ParseF64(tok.substr(colon + 1));
      LACA_CHECK(val.has_value(),
                 "bad attribute value in '" + tok + "' at " + At(path, line_no));
      row.emplace_back(static_cast<uint32_t>(*col), *val);
    }
    attrs.SetRow(node, std::move(row));
  }
  attrs.Normalize();
  return attrs;
}

void SaveAttributes(const AttributeMatrix& attrs, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  out << attrs.num_rows() << ' ' << attrs.num_cols() << '\n';
  for (NodeId i = 0; i < attrs.num_rows(); ++i) {
    auto row = attrs.Row(i);
    if (row.empty()) continue;
    out << i;
    for (const auto& [col, val] : row) out << ' ' << col << ':' << val;
    out << '\n';
  }
  LACA_CHECK(out.good(), "write failure: " + path);
}

Communities LoadCommunities(const std::string& path, NodeId num_nodes) {
  std::ifstream in = OpenForRead(path);
  Communities comms;
  comms.node_comms.assign(num_nodes, {});
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    std::vector<NodeId> members;
    std::string tok;
    while (ls >> tok) {
      const NodeId v = ParseNodeId(tok, "community member", path, line_no);
      LACA_CHECK(v < num_nodes,
                 "node out of range at " + At(path, line_no));
      members.push_back(v);
    }
    if (members.empty()) continue;
    uint32_t c = static_cast<uint32_t>(comms.members.size());
    for (NodeId m : members) comms.node_comms[m].push_back(c);
    comms.members.push_back(std::move(members));
  }
  return comms;
}

void SaveCommunities(const Communities& comms, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  for (const auto& members : comms.members) {
    for (size_t i = 0; i < members.size(); ++i) {
      if (i) out << ' ';
      out << members[i];
    }
    out << '\n';
  }
  LACA_CHECK(out.good(), "write failure: " + path);
}

}  // namespace laca
