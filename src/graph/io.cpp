#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "graph/builder.hpp"
#include "graph/io_internal.hpp"

namespace laca {

using io_internal::IsCommentOrBlank;
using io_internal::OpenForRead;
using io_internal::OpenForWrite;

Graph LoadEdgeList(const std::string& path, NodeId num_nodes, bool weighted) {
  std::ifstream in = OpenForRead(path);
  GraphBuilder builder(num_nodes);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    uint64_t u, v;
    double w = 1.0;
    LACA_CHECK(static_cast<bool>(ls >> u >> v),
               "bad edge at " + path + ":" + std::to_string(line_no));
    if (weighted) ls >> w;
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
  }
  return builder.Build(weighted);
}

void SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= u) continue;  // emit each undirected edge once
      out << u << ' ' << nbrs[i];
      if (graph.is_weighted()) out << ' ' << wts[i];
      out << '\n';
    }
  }
  LACA_CHECK(out.good(), "write failure: " + path);
}

AttributeMatrix LoadAttributes(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::string line;
  size_t line_no = 0;
  uint64_t n = 0, d = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    LACA_CHECK(static_cast<bool>(ls >> n >> d),
               "bad header at " + path + ":" + std::to_string(line_no));
    break;
  }
  LACA_CHECK(n > 0 && d > 0, "attribute header missing in " + path);
  AttributeMatrix attrs(static_cast<NodeId>(n), static_cast<uint32_t>(d));
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    uint64_t node;
    LACA_CHECK(static_cast<bool>(ls >> node) && node < n,
               "bad attribute row at " + path + ":" + std::to_string(line_no));
    std::vector<AttributeMatrix::Entry> row;
    std::string tok;
    while (ls >> tok) {
      size_t colon = tok.find(':');
      LACA_CHECK(colon != std::string::npos,
                 "expected col:val at " + path + ":" + std::to_string(line_no));
      uint32_t col = static_cast<uint32_t>(std::stoul(tok.substr(0, colon)));
      double val = std::stod(tok.substr(colon + 1));
      row.emplace_back(col, val);
    }
    attrs.SetRow(static_cast<NodeId>(node), std::move(row));
  }
  attrs.Normalize();
  return attrs;
}

void SaveAttributes(const AttributeMatrix& attrs, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  out << attrs.num_rows() << ' ' << attrs.num_cols() << '\n';
  for (NodeId i = 0; i < attrs.num_rows(); ++i) {
    auto row = attrs.Row(i);
    if (row.empty()) continue;
    out << i;
    for (const auto& [col, val] : row) out << ' ' << col << ':' << val;
    out << '\n';
  }
  LACA_CHECK(out.good(), "write failure: " + path);
}

Communities LoadCommunities(const std::string& path, NodeId num_nodes) {
  std::ifstream in = OpenForRead(path);
  Communities comms;
  comms.node_comms.assign(num_nodes, {});
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::istringstream ls(line);
    std::vector<NodeId> members;
    uint64_t v;
    while (ls >> v) {
      LACA_CHECK(v < num_nodes,
                 "node out of range at " + path + ":" + std::to_string(line_no));
      members.push_back(static_cast<NodeId>(v));
    }
    if (members.empty()) continue;
    uint32_t c = static_cast<uint32_t>(comms.members.size());
    for (NodeId m : members) comms.node_comms[m].push_back(c);
    comms.members.push_back(std::move(members));
  }
  return comms;
}

void SaveCommunities(const Communities& comms, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  for (const auto& members : comms.members) {
    for (size_t i = 0; i < members.size(); ++i) {
      if (i) out << ' ';
      out << members[i];
    }
    out << '\n';
  }
  LACA_CHECK(out.good(), "write failure: " + path);
}

}  // namespace laca
