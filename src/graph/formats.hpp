// Loaders for the on-disk formats the paper's public datasets ship in.
//
// The evaluation graphs (Table III / VIII) are distributed in a handful of
// format families. This module parses each family into the library's
// in-memory types so the experiment harness runs on the real data whenever it
// is available; the offline benches fall back to the simulated stand-ins
// (see eval/datasets.hpp and DESIGN.md §3):
//   * Planetoid (Cora, PubMed): `<id> <word flags> <label>` rows in
//     `.content` plus `<cited> <citing>` pairs in `.cites`;
//   * SNAP community graphs (com-DBLP, com-Amazon, com-Orkut):
//     `*-ungraph.txt` edge list plus `*-cmty.txt` member lists;
//   * OGB-style CSV directories (ArXiv and friends): `edge.csv`,
//     `node-feat.csv`, `node-label.csv`;
//   * METIS adjacency files (the common graph-partitioning exchange format);
//   * Matrix Market coordinate files (adjacency matrices).
//
// All loaders validate eagerly and throw std::invalid_argument with a
// path:line location on malformed input.
#ifndef LACA_GRAPH_FORMATS_HPP_
#define LACA_GRAPH_FORMATS_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Builds disjoint communities from per-node class labels: nodes sharing a
/// label form one community. Labels must be < `num_labels`; `num_labels` of 0
/// infers the count from the data. Empty classes yield no community.
Communities CommunitiesFromLabels(const std::vector<uint32_t>& labels,
                                  uint32_t num_labels = 0);

// ---------------------------------------------------------------------------
// Planetoid (Cora / PubMed / CiteSeer raw distribution).

/// A parsed Planetoid dataset. Node ids are assigned in `.content` row order;
/// the original string identifiers and label names are preserved for
/// reporting (e.g. the Fig. 8-style case study).
struct PlanetoidDataset {
  AttributedGraph data;
  /// Original paper ids, indexed by NodeId.
  std::vector<std::string> node_names;
  /// Label strings, indexed by community id.
  std::vector<std::string> label_names;
  /// `.cites` lines referencing papers absent from `.content` (the real Cora
  /// has a few); they are skipped and counted here.
  size_t dangling_citations = 0;
};

/// Parses the two-file Planetoid distribution. `.content` rows are
/// whitespace-separated: a string id, a fixed number of attribute values
/// (binary word flags in Cora, TF-IDF reals in PubMed), and a class label.
/// The attribute dimension is inferred from the first row; all rows must
/// agree. `.cites` rows are `<cited> <citing>` id pairs.
PlanetoidDataset LoadPlanetoid(const std::string& content_path,
                               const std::string& cites_path);

// ---------------------------------------------------------------------------
// SNAP community-graph distribution (com-DBLP / com-Amazon / com-Orkut).

/// A parsed SNAP dataset. SNAP node ids are arbitrary and non-contiguous;
/// they are remapped to dense NodeIds in first-appearance order.
struct SnapCommunityDataset {
  /// Topology and ground truth; `data.attributes` is empty (these graphs are
  /// the paper's non-attributed Table VIII datasets).
  AttributedGraph data;
  /// Original SNAP ids, indexed by NodeId.
  std::vector<uint64_t> original_ids;
  /// Community members absent from the edge file (skipped, counted).
  size_t skipped_members = 0;
};

/// Parses `*-ungraph.txt` ("u<TAB>v" lines, '#' comments) and, when
/// `cmty_path` is non-empty, `*-cmty.txt` (one tab-separated member list per
/// line, in original ids).
SnapCommunityDataset LoadSnapCommunityGraph(const std::string& edge_path,
                                            const std::string& cmty_path = "");

// ---------------------------------------------------------------------------
// OGB-style CSV directory (ogbn-arxiv raw download and similar).

/// A parsed CSV dataset (edge list + optional dense features and labels).
struct CsvDataset {
  AttributedGraph data;
  /// Per-node class labels (empty when no label file was given).
  std::vector<uint32_t> labels;
};

/// Parses `edge_path` ("u,v" per line), an optional `feat_path` (one
/// comma-separated row of doubles per node, row order = node id), and an
/// optional `label_path` (one integer per line). Feature rows are stored
/// sparsely (zeros dropped) and L2-normalized; labels become disjoint
/// ground-truth communities.
CsvDataset LoadCsvDataset(const std::string& edge_path,
                          const std::string& feat_path = "",
                          const std::string& label_path = "");

// ---------------------------------------------------------------------------
// METIS adjacency format.

/// Parses a METIS graph file: header "n m [fmt]" then one 1-based adjacency
/// line per node. fmt's last digit enables edge weights ("1"); node weights
/// ("10"/"11" with an optional ncon) are parsed and discarded. '%' comments
/// are allowed anywhere.
Graph LoadMetis(const std::string& path);

/// Writes `graph` in METIS format (fmt "001" when weighted).
void SaveMetis(const Graph& graph, const std::string& path);

// ---------------------------------------------------------------------------
// Matrix Market coordinate format.

/// Parses a Matrix Market file as an undirected adjacency matrix. Supports
/// the `matrix coordinate` form with `pattern`, `real`, or `integer` fields
/// and `general` or `symmetric` symmetry; the matrix must be square.
/// Self-loops are dropped and duplicate entries merged, mirroring
/// GraphBuilder semantics. Non-positive weights are rejected.
Graph LoadMatrixMarket(const std::string& path);

}  // namespace laca

#endif  // LACA_GRAPH_FORMATS_HPP_
