// Binary persistence for graphs, attributes, communities, and whole datasets.
//
// The text formats in graph/io.hpp are for interchange; these binary files
// are for caching — loading a large generated or converted dataset from the
// binary cache is orders of magnitude faster than re-parsing text or
// re-running the generator. Files use the checksummed container of
// common/serialize.hpp, so corruption and truncation are detected up front.
#ifndef LACA_GRAPH_BINARY_IO_HPP_
#define LACA_GRAPH_BINARY_IO_HPP_

#include <string>

#include "attr/attribute_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Writes `graph` (topology and, when present, edge weights) to `path`.
void SaveGraphBinary(const Graph& graph, const std::string& path);

/// Reads a graph written by SaveGraphBinary. Throws std::invalid_argument on
/// missing, corrupt, truncated, or wrong-kind files.
Graph LoadGraphBinary(const std::string& path);

/// Writes the sparse attribute matrix to `path`. Values are stored exactly
/// (no re-normalization on load).
void SaveAttributesBinary(const AttributeMatrix& attrs,
                          const std::string& path);

/// Reads an attribute matrix written by SaveAttributesBinary.
AttributeMatrix LoadAttributesBinary(const std::string& path);

/// As above, additionally requiring exactly `expected_rows` rows — checked
/// against the header BEFORE any row storage is allocated, so a mismatched
/// (or hostile) file is rejected without trusting its row count. Every load
/// path that knows its graph must use this overload.
AttributeMatrix LoadAttributesBinary(const std::string& path,
                                     NodeId expected_rows);

/// Writes ground-truth communities (possibly overlapping) to `path`.
void SaveCommunitiesBinary(const Communities& comms, NodeId num_nodes,
                           const std::string& path);

/// Reads communities written by SaveCommunitiesBinary.
///
/// NOTE: the declared node count drives an allocation proportional to it
/// (one membership list per node, including isolated nodes that occupy no
/// payload bytes), so this unchecked overload is for TRUSTED cache files
/// only. Untrusted paths (snapshot directories, anything reachable from the
/// serving edge) must use the expected-nodes overload below, which validates
/// the count before allocating. See DESIGN.md §12.
Communities LoadCommunitiesBinary(const std::string& path);

/// As above, additionally requiring the file to cover exactly
/// `expected_nodes` nodes — checked against the header BEFORE the per-node
/// membership table is allocated.
Communities LoadCommunitiesBinary(const std::string& path,
                                  NodeId expected_nodes);

/// Writes a whole dataset (graph + attributes + communities) as one file.
void SaveDatasetBinary(const AttributedGraph& data, const std::string& path);

/// Reads a dataset written by SaveDatasetBinary.
AttributedGraph LoadDatasetBinary(const std::string& path);

}  // namespace laca

#endif  // LACA_GRAPH_BINARY_IO_HPP_
