// Binary persistence for graphs, attributes, communities, and whole datasets.
//
// The text formats in graph/io.hpp are for interchange; these binary files
// are for caching — loading a large generated or converted dataset from the
// binary cache is orders of magnitude faster than re-parsing text or
// re-running the generator. Files use the checksummed container of
// common/serialize.hpp, so corruption and truncation are detected up front.
#ifndef LACA_GRAPH_BINARY_IO_HPP_
#define LACA_GRAPH_BINARY_IO_HPP_

#include <string>

#include "attr/attribute_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Writes `graph` (topology and, when present, edge weights) to `path`.
void SaveGraphBinary(const Graph& graph, const std::string& path);

/// Reads a graph written by SaveGraphBinary. Throws std::invalid_argument on
/// missing, corrupt, truncated, or wrong-kind files.
Graph LoadGraphBinary(const std::string& path);

/// Writes the sparse attribute matrix to `path`. Values are stored exactly
/// (no re-normalization on load).
void SaveAttributesBinary(const AttributeMatrix& attrs,
                          const std::string& path);

/// Reads an attribute matrix written by SaveAttributesBinary.
AttributeMatrix LoadAttributesBinary(const std::string& path);

/// Writes ground-truth communities (possibly overlapping) to `path`.
void SaveCommunitiesBinary(const Communities& comms, NodeId num_nodes,
                           const std::string& path);

/// Reads communities written by SaveCommunitiesBinary.
Communities LoadCommunitiesBinary(const std::string& path);

/// Writes a whole dataset (graph + attributes + communities) as one file.
void SaveDatasetBinary(const AttributedGraph& data, const std::string& path);

/// Reads a dataset written by SaveDatasetBinary.
AttributedGraph LoadDatasetBinary(const std::string& path);

}  // namespace laca

#endif  // LACA_GRAPH_BINARY_IO_HPP_
