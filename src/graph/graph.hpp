// Compressed-sparse-row graph: the topology substrate for all algorithms.
#ifndef LACA_GRAPH_GRAPH_HPP_
#define LACA_GRAPH_GRAPH_HPP_

#include <span>
#include <vector>

#include "common/types.hpp"

namespace laca {

/// An undirected graph in CSR form, optionally edge-weighted.
///
/// Each undirected edge {u, v} is stored twice (u->v and v->u). Adjacency
/// lists are sorted by neighbor id, which enables O(log d) edge lookups.
/// Instances are immutable after construction; build them with GraphBuilder.
///
/// For weighted graphs, `Degree(v)` is the weighted degree (sum of incident
/// edge weights) — the quantity every diffusion algorithm in this library
/// normalizes by — while `DegreeCount(v)` is the number of neighbors.
class Graph {
 public:
  Graph() = default;

  /// Constructs from raw CSR arrays. `offsets` has n+1 entries; `adjacency`
  /// holds 2|E| sorted neighbor lists; `weights` is either empty (unweighted)
  /// or parallel to `adjacency` with strictly positive values.
  /// Throws std::invalid_argument on malformed input.
  Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> adjacency,
        std::vector<double> weights);

  NodeId num_nodes() const { return static_cast<NodeId>(degree_count_.size()); }

  /// Number of undirected edges |E|.
  uint64_t num_edges() const { return adjacency_.size() / 2; }

  bool is_weighted() const { return !weights_.empty(); }

  /// Neighbors of `v`, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// Weights parallel to Neighbors(v); empty span if unweighted.
  std::span<const double> NeighborWeights(NodeId v) const {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Weighted degree of `v` (neighbor count when unweighted).
  double Degree(NodeId v) const { return degree_[v]; }

  /// Number of neighbors of `v`.
  NodeId DegreeCount(NodeId v) const { return degree_count_[v]; }

  /// Sum of Degree(v) over all nodes (2|E| for unweighted graphs).
  double TotalVolume() const { return total_volume_; }

  /// True if {u, v} is an edge (binary search over sorted adjacency).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Weight of edge {u, v}; 0 if absent, 1 for edges of unweighted graphs.
  double EdgeWeight(NodeId u, NodeId v) const;

  /// Sum of Degree(v) over `nodes`.
  double Volume(std::span<const NodeId> nodes) const;

  /// Maximum DegreeCount over all nodes (0 for the empty graph).
  NodeId MaxDegree() const;

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<NodeId>& adjacency() const { return adjacency_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Flat weighted-degree array (index = node id). The diffusion kernels walk
  /// this sequentially instead of calling Degree(v) per node.
  const std::vector<double>& degrees() const { return degree_; }

  /// Process-unique identity of this graph's contents. Every constructed
  /// graph gets a fresh id; copies share their source's id (identical,
  /// immutable contents). Lets caches (DiffusionWorkspace) detect rebinding
  /// without comparing possibly-dangling data pointers.
  uint64_t instance_id() const { return instance_id_; }

 private:
  static uint64_t NextInstanceId();

  std::vector<EdgeIndex> offsets_;   // n+1
  std::vector<NodeId> adjacency_;    // 2|E|
  std::vector<double> weights_;      // empty or 2|E|
  std::vector<double> degree_;       // weighted degree cache
  std::vector<NodeId> degree_count_; // neighbor counts
  double total_volume_ = 0.0;
  uint64_t instance_id_ = NextInstanceId();
};

}  // namespace laca

#endif  // LACA_GRAPH_GRAPH_HPP_
