// Descriptive statistics for graphs and attributed datasets.
//
// Powers the Table III / VIII reproduction (bench_table3_dataset_stats), the
// dataset-inspection CLI, and the calibration story of DESIGN.md §3: the
// simulated stand-ins are tuned so these statistics land near the published
// values of the original datasets.
#ifndef LACA_GRAPH_STATS_HPP_
#define LACA_GRAPH_STATS_HPP_

#include <cstdint>
#include <vector>

#include "attr/attribute_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Degree distribution summary.
struct DegreeStats {
  NodeId min = 0;
  NodeId max = 0;
  double mean = 0.0;
  double median = 0.0;
  /// Fraction of volume held by the top 1% highest-degree nodes — the
  /// structural-heterogeneity axis that motivates AdaptiveDiffuse
  /// (Section IV-B's high-degree-node discussion).
  double top1pct_volume_share = 0.0;
};

/// Computes the degree summary. Throws std::invalid_argument on an empty
/// graph.
DegreeStats ComputeDegreeStats(const Graph& graph);

/// Labels connected components; returns per-node component ids (dense,
/// starting at 0, in order of discovery from node 0 upward).
std::vector<uint32_t> ConnectedComponents(const Graph& graph);

/// Number of connected components.
uint32_t CountConnectedComponents(const Graph& graph);

/// Average local clustering coefficient over a uniform node sample
/// (exact when sample_size >= n). Nodes of degree < 2 contribute 0.
double SampledClusteringCoefficient(const Graph& graph,
                                    size_t sample_size = 2000,
                                    uint64_t seed = 1);

/// Edge homophily of a labeled graph: the fraction of edges whose endpoints
/// share at least one community. The axis swept by the heterophily
/// extension study (bench_ext_heterophily).
double EdgeHomophily(const Graph& graph, const Communities& communities);

/// Mean attribute similarity (cosine of L2-normalized rows) across edges
/// minus across sampled non-edges — positive values mean attributes agree
/// with topology (the complementarity premise of Section I).
double AttributeAssortativity(const Graph& graph, const AttributeMatrix& x,
                              size_t sample_size = 20'000, uint64_t seed = 1);

}  // namespace laca

#endif  // LACA_GRAPH_STATS_HPP_
