// Synthetic attributed graph generators.
//
// The paper evaluates on public datasets (Cora, PubMed, ..., Amazon2M) that
// are not available in this offline environment. These generators produce
// simulated stand-ins: attributed stochastic block models whose knobs map to
// the dataset properties that drive the paper's results — structural noise
// (missing / rewired links), attribute informativeness, degree density, and
// overlapping vs. disjoint ground truth. See DESIGN.md §3.
#ifndef LACA_GRAPH_GENERATORS_HPP_
#define LACA_GRAPH_GENERATORS_HPP_

#include <cstdint>
#include <vector>

#include "attr/attribute_matrix.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Ground-truth community structure, possibly overlapping.
struct Communities {
  /// members[c] lists the nodes of community c.
  std::vector<std::vector<NodeId>> members;
  /// node_comms[v] lists the communities containing node v.
  std::vector<std::vector<uint32_t>> node_comms;

  size_t num_communities() const { return members.size(); }

  /// The paper's ground-truth local cluster Y_s for a seed: the union of all
  /// communities containing the seed (single community for disjoint models).
  std::vector<NodeId> GroundTruthCluster(NodeId seed) const;

  /// Mean |Y_s| over all nodes (the |Ys| column of Table III).
  double AverageClusterSize() const;
};

/// A generated dataset: topology + attributes + ground truth.
struct AttributedGraph {
  Graph graph;
  AttributeMatrix attributes;  // zero columns for non-attributed datasets
  Communities communities;
};

/// Parameters of the attributed stochastic block model.
struct AttributedSbmOptions {
  NodeId num_nodes = 1000;
  uint32_t num_communities = 10;
  /// Target mean degree (m/n * 2).
  double avg_degree = 10.0;
  /// Probability an edge endpoint is drawn from the source's own community
  /// (vs. uniformly at random). Lower values -> higher ground-truth
  /// conductance, emulating the paper's noisy datasets (Flickr: 0.765).
  double intra_fraction = 0.8;
  /// Fraction of generated edges rewired to two uniform endpoints (noisy
  /// links on top of the background inter-community mass).
  double edge_noise = 0.0;
  /// Number of attribute dimensions (0 -> non-attributed dataset).
  uint32_t attr_dim = 100;
  /// Non-zeros per node attribute row (bag-of-words sparsity).
  uint32_t attr_nnz = 10;
  /// Probability that a non-zero is drawn uniformly from all dimensions
  /// instead of the community's topic distribution (attribute noise).
  double attr_noise = 0.2;
  /// Topic dimensions per community (size of the community's preferred
  /// vocabulary). Communities draw from overlapping vocabulary windows.
  uint32_t topic_dims = 30;
  /// Maximum communities per node; > 1 yields overlapping ground truth
  /// (BlogCL / Flickr style). Each node joins 1..max communities uniformly.
  uint32_t comms_per_node_max = 1;
  /// Power-law exponent for community sizes (0 = equal sizes).
  double community_size_skew = 0.0;
  /// Power-law exponent for the DEGREE distribution (0 = uniform endpoint
  /// sampling, the historical behavior — bit-identical streams). When > 0,
  /// edge endpoints outside a community draw (and every edge's source
  /// draws) from Zipf-like node weights w_v ∝ (v + 1)^-degree_skew, so a few
  /// hub nodes collect a heavy-tailed share of the edges — the scheduler
  /// skew real co-purchase / social graphs exhibit and the equal-weight SBM
  /// understates (ROADMAP dataset-realism item; exercised by
  /// bench_ext_parallel_scaling). Values around 0.6-1.0 give max degrees
  /// 1-2 orders of magnitude above the mean at these sizes.
  double degree_skew = 0.0;
  uint64_t seed = 1;
};

/// Generates an attributed (or plain, if attr_dim == 0) SBM graph.
/// Guarantees min degree >= 1 by attaching isolated nodes to a random
/// community member. Throws std::invalid_argument on nonsensical options.
AttributedGraph GenerateAttributedSbm(const AttributedSbmOptions& opts);

/// Erdős–Rényi G(n, m) with m ≈ n * avg_degree / 2 distinct edges.
Graph GenerateErdosRenyi(NodeId n, double avg_degree, uint64_t seed);

/// Barabási–Albert preferential attachment; each new node attaches `m` edges.
Graph GenerateBarabasiAlbert(NodeId n, uint32_t m, uint64_t seed);

/// A fixed 10-node graph matching Fig. 4 of the paper (running example for
/// GreedyDiffuse): v1..v10 mapped to ids 0..9.
Graph Fig4ExampleGraph();

}  // namespace laca

#endif  // LACA_GRAPH_GENERATORS_HPP_
