#include "graph/formats.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "graph/builder.hpp"
#include "graph/io_internal.hpp"

namespace laca {

using io_internal::At;
using io_internal::IsCommentOrBlank;
using io_internal::OpenForRead;
using io_internal::OpenForWrite;

namespace {

/// Splits `line` on `sep` (',' for CSV) or any whitespace when sep == ' '.
std::vector<std::string> SplitFields(const std::string& line, char sep) {
  std::vector<std::string> fields;
  if (sep == ' ') {
    std::istringstream ls(line);
    std::string tok;
    while (ls >> tok) fields.push_back(std::move(tok));
    return fields;
  }
  std::string field;
  for (char c : line) {
    if (c == sep) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

// Both go through the strict whole-token boundary (common/parse.hpp), which
// is slightly stricter than the strtod/strtoull they replace: leading
// whitespace, "+5", and "inf"/"nan" spellings are now rejected — none of
// which a well-formed matrix-market or edge-list file contains.
double ParseDouble(const std::string& tok, const std::string& where) {
  const std::optional<double> v = ParseF64(tok);
  LACA_CHECK(v.has_value(), "expected a number, got '" + tok + "' at " + where);
  return *v;
}

uint64_t ParseUint(const std::string& tok, const std::string& where) {
  const std::optional<uint64_t> v = ParseU64(tok);
  LACA_CHECK(v.has_value(),
             "expected a non-negative integer, got '" + tok + "' at " + where);
  return *v;
}

}  // namespace

Communities CommunitiesFromLabels(const std::vector<uint32_t>& labels,
                                  uint32_t num_labels) {
  if (num_labels == 0) {
    for (uint32_t l : labels) num_labels = std::max(num_labels, l + 1);
  }
  std::vector<std::vector<NodeId>> by_label(num_labels);
  for (NodeId v = 0; v < labels.size(); ++v) {
    LACA_CHECK(labels[v] < num_labels,
               "label " + std::to_string(labels[v]) + " out of range");
    by_label[labels[v]].push_back(v);
  }
  Communities comms;
  comms.node_comms.assign(labels.size(), {});
  for (auto& members : by_label) {
    if (members.empty()) continue;  // compaction: empty classes get no id
    uint32_t c = static_cast<uint32_t>(comms.members.size());
    for (NodeId m : members) comms.node_comms[m].push_back(c);
    comms.members.push_back(std::move(members));
  }
  return comms;
}

// ---------------------------------------------------------------------------
// Planetoid.

PlanetoidDataset LoadPlanetoid(const std::string& content_path,
                               const std::string& cites_path) {
  PlanetoidDataset out;
  std::unordered_map<std::string, NodeId> id_of;
  std::unordered_map<std::string, uint32_t> label_of;
  std::vector<uint32_t> labels;
  std::vector<std::vector<AttributeMatrix::Entry>> rows;
  size_t dim = 0;

  std::ifstream content = OpenForRead(content_path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(content, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::vector<std::string> tok = SplitFields(line, ' ');
    LACA_CHECK(tok.size() >= 3,
               "content row needs id, >=1 attribute, and label at " +
                   At(content_path, line_no));
    if (dim == 0) {
      dim = tok.size() - 2;
    } else {
      LACA_CHECK(tok.size() - 2 == dim,
                 "inconsistent attribute count at " + At(content_path, line_no));
    }
    NodeId v = static_cast<NodeId>(out.node_names.size());
    LACA_CHECK(id_of.emplace(tok.front(), v).second,
               "duplicate node id '" + tok.front() + "' at " +
                   At(content_path, line_no));
    out.node_names.push_back(tok.front());

    std::vector<AttributeMatrix::Entry> row;
    for (size_t j = 0; j < dim; ++j) {
      double val = ParseDouble(tok[j + 1], At(content_path, line_no));
      if (val != 0.0) row.emplace_back(static_cast<uint32_t>(j), val);
    }
    rows.push_back(std::move(row));

    const std::string& label = tok.back();
    auto [it, inserted] =
        label_of.emplace(label, static_cast<uint32_t>(out.label_names.size()));
    if (inserted) out.label_names.push_back(label);
    labels.push_back(it->second);
  }
  const NodeId n = static_cast<NodeId>(out.node_names.size());
  LACA_CHECK(n > 0, "no content rows in " + content_path);

  AttributeMatrix attrs(n, static_cast<uint32_t>(dim));
  for (NodeId v = 0; v < n; ++v) attrs.SetRow(v, std::move(rows[v]));
  attrs.Normalize();

  GraphBuilder builder(n);
  std::ifstream cites = OpenForRead(cites_path);
  line_no = 0;
  while (std::getline(cites, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::vector<std::string> tok = SplitFields(line, ' ');
    LACA_CHECK(tok.size() == 2,
               "expected '<cited> <citing>' at " + At(cites_path, line_no));
    auto a = id_of.find(tok[0]);
    auto b = id_of.find(tok[1]);
    if (a == id_of.end() || b == id_of.end()) {
      ++out.dangling_citations;  // the real Cora has a few of these
      continue;
    }
    if (a->second != b->second) builder.AddEdge(a->second, b->second);
  }

  out.data.graph = builder.Build();
  out.data.attributes = std::move(attrs);
  out.data.communities =
      CommunitiesFromLabels(labels, static_cast<uint32_t>(out.label_names.size()));
  return out;
}

// ---------------------------------------------------------------------------
// SNAP community graphs.

SnapCommunityDataset LoadSnapCommunityGraph(const std::string& edge_path,
                                            const std::string& cmty_path) {
  SnapCommunityDataset out;
  std::unordered_map<uint64_t, NodeId> id_of;
  auto intern = [&](uint64_t snap_id) {
    auto [it, inserted] =
        id_of.emplace(snap_id, static_cast<NodeId>(out.original_ids.size()));
    if (inserted) out.original_ids.push_back(snap_id);
    return it->second;
  };

  GraphBuilder builder;
  std::ifstream edges = OpenForRead(edge_path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(edges, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::vector<std::string> tok = SplitFields(line, ' ');
    LACA_CHECK(tok.size() == 2, "expected 'u v' at " + At(edge_path, line_no));
    NodeId u = intern(ParseUint(tok[0], At(edge_path, line_no)));
    NodeId v = intern(ParseUint(tok[1], At(edge_path, line_no)));
    if (u != v) builder.AddEdge(u, v);
  }
  out.data.graph = builder.Build();
  const NodeId n = out.data.graph.num_nodes();

  Communities comms;
  comms.node_comms.assign(n, {});
  if (!cmty_path.empty()) {
    std::ifstream cmty = OpenForRead(cmty_path);
    line_no = 0;
    while (std::getline(cmty, line)) {
      ++line_no;
      if (IsCommentOrBlank(line)) continue;
      std::vector<NodeId> members;
      for (const std::string& tok : SplitFields(line, ' ')) {
        auto it = id_of.find(ParseUint(tok, At(cmty_path, line_no)));
        if (it == id_of.end()) {
          ++out.skipped_members;  // member never appears in the edge file
          continue;
        }
        members.push_back(it->second);
      }
      if (members.empty()) continue;
      uint32_t c = static_cast<uint32_t>(comms.members.size());
      for (NodeId m : members) comms.node_comms[m].push_back(c);
      comms.members.push_back(std::move(members));
    }
  }
  out.data.communities = std::move(comms);
  return out;
}

// ---------------------------------------------------------------------------
// OGB-style CSV.

CsvDataset LoadCsvDataset(const std::string& edge_path,
                          const std::string& feat_path,
                          const std::string& label_path) {
  CsvDataset out;
  struct RawEdge {
    NodeId u, v;
  };
  std::vector<RawEdge> edges;
  uint64_t max_id = 0;
  bool any_node = false;

  std::ifstream in = OpenForRead(edge_path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::vector<std::string> tok = SplitFields(line, ',');
    LACA_CHECK(tok.size() == 2, "expected 'u,v' at " + At(edge_path, line_no));
    uint64_t u = ParseUint(tok[0], At(edge_path, line_no));
    uint64_t v = ParseUint(tok[1], At(edge_path, line_no));
    max_id = std::max({max_id, u, v});
    any_node = true;
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }

  std::vector<std::vector<AttributeMatrix::Entry>> feat_rows;
  size_t dim = 0;
  if (!feat_path.empty()) {
    std::ifstream feats = OpenForRead(feat_path);
    line_no = 0;
    while (std::getline(feats, line)) {
      ++line_no;
      if (IsCommentOrBlank(line)) continue;
      std::vector<std::string> tok = SplitFields(line, ',');
      if (dim == 0) {
        dim = tok.size();
      } else {
        LACA_CHECK(tok.size() == dim,
                   "inconsistent feature count at " + At(feat_path, line_no));
      }
      std::vector<AttributeMatrix::Entry> row;
      for (size_t j = 0; j < tok.size(); ++j) {
        double val = ParseDouble(tok[j], At(feat_path, line_no));
        if (val != 0.0) row.emplace_back(static_cast<uint32_t>(j), val);
      }
      feat_rows.push_back(std::move(row));
    }
    if (!feat_rows.empty()) {
      any_node = true;
      max_id = std::max<uint64_t>(max_id, feat_rows.size() - 1);
    }
  }

  if (!label_path.empty()) {
    std::ifstream lab = OpenForRead(label_path);
    line_no = 0;
    while (std::getline(lab, line)) {
      ++line_no;
      if (IsCommentOrBlank(line)) continue;
      out.labels.push_back(static_cast<uint32_t>(
          ParseUint(SplitFields(line, ',')[0], At(label_path, line_no))));
    }
    if (!out.labels.empty()) {
      any_node = true;
      max_id = std::max<uint64_t>(max_id, out.labels.size() - 1);
    }
  }

  LACA_CHECK(any_node, "dataset is empty: " + edge_path);
  LACA_CHECK(max_id < kInvalidNode, "node id overflow in " + edge_path);
  const NodeId n = static_cast<NodeId>(max_id + 1);

  GraphBuilder builder(n);
  for (const RawEdge& e : edges) {
    if (e.u != e.v) builder.AddEdge(e.u, e.v);
  }
  out.data.graph = builder.Build();

  AttributeMatrix attrs(n, static_cast<uint32_t>(dim));
  for (NodeId v = 0; v < feat_rows.size(); ++v) {
    attrs.SetRow(v, std::move(feat_rows[v]));
  }
  attrs.Normalize();
  out.data.attributes = std::move(attrs);

  if (!out.labels.empty()) {
    std::vector<uint32_t> padded = out.labels;
    LACA_CHECK(padded.size() <= n, "more labels than nodes in " + label_path);
    // Unlabeled trailing nodes join a synthetic "unlabeled" class that is
    // dropped if empty.
    uint32_t num_labels = 0;
    for (uint32_t l : padded) num_labels = std::max(num_labels, l + 1);
    padded.resize(n, num_labels);
    out.data.communities = CommunitiesFromLabels(padded, num_labels + 1);
  } else {
    out.data.communities.node_comms.assign(n, {});
  }
  return out;
}

// ---------------------------------------------------------------------------
// METIS.

Graph LoadMetis(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::string line;
  size_t line_no = 0;

  auto next_data_line = [&](std::string* dst) {
    while (std::getline(in, *dst)) {
      ++line_no;
      if (!IsCommentOrBlank(*dst, '%')) return true;
    }
    return false;
  };

  LACA_CHECK(next_data_line(&line), "missing METIS header in " + path);
  std::vector<std::string> head = SplitFields(line, ' ');
  LACA_CHECK(head.size() >= 2 && head.size() <= 4,
             "METIS header needs 'n m [fmt [ncon]]' at " + At(path, line_no));
  const uint64_t n = ParseUint(head[0], At(path, line_no));
  const uint64_t m = ParseUint(head[1], At(path, line_no));
  LACA_CHECK(n <= kInvalidNode, "too many nodes in " + path);
  bool edge_weights = false, node_weights = false, node_sizes = false;
  if (head.size() >= 3) {
    const std::string& fmt = head[2];
    LACA_CHECK(fmt.size() <= 3 &&
                   fmt.find_first_not_of("01") == std::string::npos,
               "bad METIS fmt '" + fmt + "' at " + At(path, line_no));
    std::string padded = std::string(3 - fmt.size(), '0') + fmt;
    node_sizes = padded[0] == '1';
    node_weights = padded[1] == '1';
    edge_weights = padded[2] == '1';
  }
  uint64_t ncon = node_weights ? 1 : 0;
  if (head.size() == 4) ncon = ParseUint(head[3], At(path, line_no));

  GraphBuilder builder(static_cast<NodeId>(n));
  for (uint64_t u = 0; u < n; ++u) {
    LACA_CHECK(next_data_line(&line),
               "METIS file ends before node " + std::to_string(u + 1));
    std::vector<std::string> tok = SplitFields(line, ' ');
    size_t pos = 0;
    if (node_sizes) ++pos;   // vertex size, unused here
    pos += ncon;             // vertex weights, unused here
    LACA_CHECK(pos <= tok.size(),
               "truncated vertex prefix at " + At(path, line_no));
    const size_t stride = edge_weights ? 2 : 1;
    LACA_CHECK((tok.size() - pos) % stride == 0,
               "dangling edge weight at " + At(path, line_no));
    for (; pos < tok.size(); pos += stride) {
      uint64_t nbr = ParseUint(tok[pos], At(path, line_no));
      LACA_CHECK(nbr >= 1 && nbr <= n,
                 "neighbor out of range at " + At(path, line_no));
      double w = 1.0;
      if (edge_weights) w = ParseDouble(tok[pos + 1], At(path, line_no));
      // Each undirected edge appears in both endpoint lists; add it once.
      if (nbr - 1 > u) {
        builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(nbr - 1), w);
      }
    }
  }
  Graph graph = builder.Build(edge_weights);
  LACA_CHECK(graph.num_edges() == m,
             "METIS header declares " + std::to_string(m) + " edges, found " +
                 std::to_string(graph.num_edges()) + " in " + path);
  return graph;
}

void SaveMetis(const Graph& graph, const std::string& path) {
  std::ofstream out = OpenForWrite(path);
  out << "% METIS graph written by laca\n";
  out << graph.num_nodes() << ' ' << graph.num_edges();
  if (graph.is_weighted()) out << " 001";
  out << '\n';
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i) out << ' ';
      out << (nbrs[i] + 1);
      if (graph.is_weighted()) out << ' ' << wts[i];
    }
    out << '\n';
  }
  LACA_CHECK(out.good(), "write failure: " + path);
}

// ---------------------------------------------------------------------------
// Matrix Market.

Graph LoadMatrixMarket(const std::string& path) {
  std::ifstream in = OpenForRead(path);
  std::string line;
  size_t line_no = 1;
  LACA_CHECK(static_cast<bool>(std::getline(in, line)),
             "empty Matrix Market file: " + path);
  std::vector<std::string> banner = SplitFields(line, ' ');
  LACA_CHECK(banner.size() == 5 && banner[0] == "%%MatrixMarket" &&
                 banner[1] == "matrix" && banner[2] == "coordinate",
             "not a coordinate MatrixMarket banner at " + At(path, 1));
  const std::string& field = banner[3];
  const std::string& symmetry = banner[4];
  LACA_CHECK(field == "pattern" || field == "real" || field == "integer",
             "unsupported field '" + field + "' in " + path);
  LACA_CHECK(symmetry == "general" || symmetry == "symmetric",
             "unsupported symmetry '" + symmetry + "' in " + path);

  auto next_data_line = [&](std::string* dst) {
    while (std::getline(in, *dst)) {
      ++line_no;
      if (!IsCommentOrBlank(*dst, '%')) return true;
    }
    return false;
  };

  LACA_CHECK(next_data_line(&line), "missing size line in " + path);
  std::vector<std::string> size_tok = SplitFields(line, ' ');
  LACA_CHECK(size_tok.size() == 3,
             "expected 'rows cols nnz' at " + At(path, line_no));
  const uint64_t rows = ParseUint(size_tok[0], At(path, line_no));
  const uint64_t cols = ParseUint(size_tok[1], At(path, line_no));
  const uint64_t nnz = ParseUint(size_tok[2], At(path, line_no));
  LACA_CHECK(rows == cols, "adjacency matrix must be square: " + path);
  LACA_CHECK(rows <= kInvalidNode, "too many nodes in " + path);

  const bool has_value = field != "pattern";
  // Canonical {min,max} keys so a general file listing both (i,j) and (j,i)
  // yields one edge; conflicting duplicate weights are rejected.
  std::unordered_map<uint64_t, double> edge_weight;
  edge_weight.reserve(nnz);
  for (uint64_t e = 0; e < nnz; ++e) {
    LACA_CHECK(next_data_line(&line),
               "file ends after " + std::to_string(e) + " of " +
                   std::to_string(nnz) + " entries: " + path);
    std::vector<std::string> tok = SplitFields(line, ' ');
    LACA_CHECK(tok.size() == (has_value ? 3u : 2u),
               "bad entry at " + At(path, line_no));
    uint64_t i = ParseUint(tok[0], At(path, line_no));
    uint64_t j = ParseUint(tok[1], At(path, line_no));
    LACA_CHECK(i >= 1 && i <= rows && j >= 1 && j <= cols,
               "index out of range at " + At(path, line_no));
    if (i == j) continue;  // drop self-loops
    double w = has_value ? ParseDouble(tok[2], At(path, line_no)) : 1.0;
    LACA_CHECK(w > 0.0, "edge weight must be positive at " + At(path, line_no));
    uint64_t key = (std::min(i, j) << 32) | std::max(i, j);
    auto [it, inserted] = edge_weight.emplace(key, w);
    LACA_CHECK(inserted || it->second == w,
               "conflicting duplicate entry at " + At(path, line_no));
  }

  GraphBuilder builder(static_cast<NodeId>(rows));
  for (const auto& [key, w] : edge_weight) {
    builder.AddEdge(static_cast<NodeId>((key >> 32) - 1),
                    static_cast<NodeId>((key & 0xffffffffu) - 1), w);
  }
  return builder.Build(has_value);
}

}  // namespace laca
