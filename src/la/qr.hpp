// Householder QR decomposition.
//
// The factorization works on a COLUMN-MAJOR scratch copy: every reflector
// build and application walks contiguous memory (the row-major layout made
// each column access a fresh cache line, which dominated TNAM construction
// on tall panels). The operation sequence is exactly the classic
// column-by-column Householder loop, so results are bit-identical to the
// historical row-major implementation; reflector applications to the
// trailing columns optionally fan out over a ThreadPool (each column's FP
// chain is unchanged, so parallel runs are bit-identical to serial at every
// thread count — DESIGN.md §6).
#ifndef LACA_LA_QR_HPP_
#define LACA_LA_QR_HPP_

#include <vector>

#include "la/matrix.hpp"

namespace laca {

class ThreadPool;

/// Thin QR factorization A = Q R of an m x n matrix with m >= n.
struct QrResult {
  DenseMatrix q;  // m x n, orthonormal columns
  DenseMatrix r;  // n x n, upper triangular
};

/// Reusable scratch for QrOrthonormalInto: the col-major factorization and
/// Q-accumulation panels plus the reflector scalars. One instance serves any
/// number of calls (buffers grow to the high-water mark and stay).
struct QrScratch {
  std::vector<double> a;    // col-major m x n factorization panel
  std::vector<double> q;    // col-major m x n Q accumulation panel
  std::vector<double> tau;  // n reflector scalars
};

/// Computes the thin Householder QR of `a`. Throws on m < n.
///
/// Used by the randomized k-SVD range finder (Algo. 3 relies on Halko et
/// al.'s subspace iteration) and by the orthogonal random feature sampler
/// (Algo. 3, Line 7), which needs Q from a square Gaussian.
QrResult HouseholderQr(const DenseMatrix& a);

/// Returns only the orthonormal factor Q (saves the R back-substitution).
DenseMatrix QrOrthonormal(const DenseMatrix& a);

/// As QrOrthonormal, but writing into a preallocated output and reusing
/// `scratch` across calls (zero steady-state allocation — the k-SVD power
/// iteration calls this 2x per round). `q` must not alias `a`. Reflector
/// applications shard over `pool` when non-null; bit-identical to serial.
void QrOrthonormalInto(const DenseMatrix& a, DenseMatrix* q,
                       QrScratch* scratch, ThreadPool* pool = nullptr);

}  // namespace laca

#endif  // LACA_LA_QR_HPP_
