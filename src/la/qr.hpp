// Householder QR decomposition.
#ifndef LACA_LA_QR_HPP_
#define LACA_LA_QR_HPP_

#include "la/matrix.hpp"

namespace laca {

/// Thin QR factorization A = Q R of an m x n matrix with m >= n.
struct QrResult {
  DenseMatrix q;  // m x n, orthonormal columns
  DenseMatrix r;  // n x n, upper triangular
};

/// Computes the thin Householder QR of `a`. Throws on m < n.
///
/// Used by the randomized k-SVD range finder (Algo. 3 relies on Halko et
/// al.'s subspace iteration) and by the orthogonal random feature sampler
/// (Algo. 3, Line 7), which needs Q from a square Gaussian.
QrResult HouseholderQr(const DenseMatrix& a);

/// Returns only the orthonormal factor Q (saves the R back-substitution).
DenseMatrix QrOrthonormal(const DenseMatrix& a);

}  // namespace laca

#endif  // LACA_LA_QR_HPP_
