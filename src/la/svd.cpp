#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace laca {

SvdResult JacobiSvd(const DenseMatrix& a) {
  const size_t m = a.rows(), n = a.cols();
  LACA_CHECK(m >= n, "JacobiSvd requires rows >= cols");

  // Work on W = A; rotate column pairs until all are mutually orthogonal:
  // A V = W  =>  A = W V^T = U diag(sigma) V^T with sigma_j = ||w_j||.
  DenseMatrix w = a;
  DenseMatrix v(n, n);
  for (size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const int kMaxSweeps = 60;
  const double kTol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double max_off = 0.0;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (size_t i = 0; i < m; ++i) {
          app += w(i, p) * w(i, p);
          aqq += w(i, q) * w(i, q);
          apq += w(i, p) * w(i, q);
        }
        double denom = std::sqrt(app * aqq);
        if (denom > 0.0) max_off = std::max(max_off, std::abs(apq) / denom);
        if (denom == 0.0 || std::abs(apq) <= kTol * denom) continue;
        // Jacobi rotation zeroing the (p,q) Gram entry.
        double zeta = (aqq - app) / (2.0 * apq);
        double t = std::copysign(1.0, zeta) /
                   (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (size_t i = 0; i < n; ++i) {
          double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (max_off <= kTol) break;
  }

  // Extract singular values and sort descending.
  std::vector<double> sigma(n);
  for (size_t j = 0; j < n; ++j) {
    double norm_sq = 0.0;
    for (size_t i = 0; i < m; ++i) norm_sq += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(norm_sq);
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.u = DenseMatrix(m, n);
  out.v = DenseMatrix(n, n);
  out.sigma.resize(n);
  for (size_t j = 0; j < n; ++j) {
    size_t src = order[j];
    out.sigma[j] = sigma[src];
    double inv = sigma[src] > 0.0 ? 1.0 / sigma[src] : 0.0;
    for (size_t i = 0; i < m; ++i) out.u(i, j) = w(i, src) * inv;
    for (size_t i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

}  // namespace laca
