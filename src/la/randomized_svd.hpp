// Randomized truncated SVD of sparse attribute matrices (Halko et al.).
//
// The sparse-times-dense legs are the nnz-dominant cost of TNAM
// construction (Algo. 3 / Lemma V.3). Both directions run as row-blocked
// gather kernels: X * B gathers over each row's entries; X^T * Q runs on a
// one-time column-compressed (CSC) copy of X so the transpose product is a
// gather too (the row-sparse scatter formulation serialized on its output
// rows). Row/column blocks optionally fan out over a ThreadPool; every
// output element's accumulation chain is fixed (ascending row order), so
// parallel runs are bit-identical to serial at every thread count
// (DESIGN.md §6).
#ifndef LACA_LA_RANDOMIZED_SVD_HPP_
#define LACA_LA_RANDOMIZED_SVD_HPP_

#include <cstdint>
#include <vector>

#include "attr/attribute_matrix.hpp"
#include "la/matrix.hpp"

namespace laca {

class ThreadPool;

/// Options for the randomized k-SVD used by TNAM construction (Algo. 3,
/// Line 1). The paper runs a constant number of subspace iterations (7).
struct KSvdOptions {
  int rank = 32;
  int oversample = 8;
  int power_iterations = 7;
  uint64_t seed = 42;
};

/// Truncated factorization X ~= U diag(sigma) V^T.
struct KSvdResult {
  DenseMatrix u;              // n x k
  std::vector<double> sigma;  // k values, descending
  DenseMatrix v;              // d x k
};

/// Column-compressed copy of an AttributeMatrix: entries of column c live in
/// [col_ptr[c], col_ptr[c+1]), with row indices ascending. Built once per
/// k-SVD (O(nnz)) and reused by every transpose product of the subspace
/// iteration.
struct AttributeMatrixCsc {
  NodeId num_rows = 0;
  uint32_t num_cols = 0;
  std::vector<uint64_t> col_ptr;  // num_cols + 1
  std::vector<NodeId> row_idx;    // nnz, ascending within each column
  std::vector<double> values;     // nnz
};

/// Builds the CSC view of `x`.
AttributeMatrixCsc BuildCsc(const AttributeMatrix& x);

/// Computes a rank-k randomized SVD of the sparse n x d matrix `x`.
///
/// Gaussian range finder with oversampling, `power_iterations` rounds of
/// subspace iteration with QR re-orthonormalization, then an exact Jacobi
/// SVD of the projected (k+p) x d panel. Runtime O(nnz(X)(k+p) + (n+d)(k+p)^2)
/// per iteration — linear in the input size, matching Lemma V.3.
/// The effective rank is capped at min(n, d). All panel buffers are
/// allocated once up front; the power iterations run allocation-free.
/// `pool` shards the row/column blocks (null = serial, bit-identical).
KSvdResult RandomizedKSvd(const AttributeMatrix& x, const KSvdOptions& opts,
                          ThreadPool* pool = nullptr);

/// Dense product Y = X * B for sparse X (n x d) and dense B (d x s).
DenseMatrix SparseTimesDense(const AttributeMatrix& x, const DenseMatrix& b);

/// As SparseTimesDense, writing into a preallocated (or resized) output,
/// with row blocks sharded over `pool`.
void SparseTimesDenseInto(const AttributeMatrix& x, const DenseMatrix& b,
                          DenseMatrix* out, ThreadPool* pool = nullptr);

/// Dense product W = X^T * Q for sparse X (n x s) and dense Q (n x s).
DenseMatrix SparseTransposeTimesDense(const AttributeMatrix& x,
                                      const DenseMatrix& q);

/// As SparseTransposeTimesDense on the CSC view: output rows (columns of X)
/// gather independently, sharded over `pool`. Bit-identical to the
/// row-sparse scatter formulation (both accumulate in ascending row order).
void SparseTransposeTimesDenseInto(const AttributeMatrixCsc& xt,
                                   const DenseMatrix& q, DenseMatrix* out,
                                   ThreadPool* pool = nullptr);

}  // namespace laca

#endif  // LACA_LA_RANDOMIZED_SVD_HPP_
