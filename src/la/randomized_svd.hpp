// Randomized truncated SVD of sparse attribute matrices (Halko et al.).
#ifndef LACA_LA_RANDOMIZED_SVD_HPP_
#define LACA_LA_RANDOMIZED_SVD_HPP_

#include <cstdint>
#include <vector>

#include "attr/attribute_matrix.hpp"
#include "la/matrix.hpp"

namespace laca {

/// Options for the randomized k-SVD used by TNAM construction (Algo. 3,
/// Line 1). The paper runs a constant number of subspace iterations (7).
struct KSvdOptions {
  int rank = 32;
  int oversample = 8;
  int power_iterations = 7;
  uint64_t seed = 42;
};

/// Truncated factorization X ~= U diag(sigma) V^T.
struct KSvdResult {
  DenseMatrix u;              // n x k
  std::vector<double> sigma;  // k values, descending
  DenseMatrix v;              // d x k
};

/// Computes a rank-k randomized SVD of the sparse n x d matrix `x`.
///
/// Gaussian range finder with oversampling, `power_iterations` rounds of
/// subspace iteration with QR re-orthonormalization, then an exact Jacobi
/// SVD of the projected (k+p) x d panel. Runtime O(nnz(X)(k+p) + (n+d)(k+p)^2)
/// per iteration — linear in the input size, matching Lemma V.3.
/// The effective rank is capped at min(n, d).
KSvdResult RandomizedKSvd(const AttributeMatrix& x, const KSvdOptions& opts);

/// Dense product Y = X * B for sparse X (n x d) and dense B (d x s).
DenseMatrix SparseTimesDense(const AttributeMatrix& x, const DenseMatrix& b);

/// Dense product W = X^T * Q for sparse X (n x d) and dense Q (n x s).
DenseMatrix SparseTransposeTimesDense(const AttributeMatrix& x,
                                      const DenseMatrix& q);

}  // namespace laca

#endif  // LACA_LA_RANDOMIZED_SVD_HPP_
