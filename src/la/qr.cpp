#include "la/qr.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace laca {
namespace {

// In-place Householder factorization; returns the reflector scalars. After
// the call `a` holds R in its upper triangle and the reflector vectors below.
std::vector<double> Factorize(DenseMatrix& a) {
  const size_t m = a.rows(), n = a.cols();
  std::vector<double> tau(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    // Build the Householder vector for column j.
    double norm_sq = 0.0;
    for (size_t i = j; i < m; ++i) norm_sq += a(i, j) * a(i, j);
    double norm = std::sqrt(norm_sq);
    if (norm == 0.0) continue;
    double alpha = a(j, j) >= 0.0 ? -norm : norm;
    double v0 = a(j, j) - alpha;
    // v = (v0, a(j+1..m, j)); H = I - tau v v^T with tau = 2 / (v^T v).
    double vtv = v0 * v0;
    for (size_t i = j + 1; i < m; ++i) vtv += a(i, j) * a(i, j);
    if (vtv == 0.0) continue;
    tau[j] = 2.0 / vtv;
    // Apply H to the remaining columns.
    for (size_t c = j + 1; c < n; ++c) {
      double dot = v0 * a(j, c);
      for (size_t i = j + 1; i < m; ++i) dot += a(i, j) * a(i, c);
      double f = tau[j] * dot;
      a(j, c) -= f * v0;
      for (size_t i = j + 1; i < m; ++i) a(i, c) -= f * a(i, j);
    }
    a(j, j) = alpha;
    // Store the (unnormalized) reflector below the diagonal; remember v0.
    if (v0 != 0.0) {
      for (size_t i = j + 1; i < m; ++i) a(i, j) /= v0;
      tau[j] *= v0 * v0;
    }
  }
  return tau;
}

// Accumulates thin Q (m x n) from the stored reflectors.
DenseMatrix AccumulateQ(const DenseMatrix& h, const std::vector<double>& tau) {
  const size_t m = h.rows(), n = h.cols();
  DenseMatrix q(m, n);
  for (size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  // Apply H_j from the left, last reflector first: Q = H_0 H_1 ... H_{n-1} I.
  for (size_t j = n; j-- > 0;) {
    if (tau[j] == 0.0) continue;
    for (size_t c = 0; c < n; ++c) {
      double dot = q(j, c);  // v0 normalized to 1
      for (size_t i = j + 1; i < m; ++i) dot += h(i, j) * q(i, c);
      double f = tau[j] * dot;
      q(j, c) -= f;
      for (size_t i = j + 1; i < m; ++i) q(i, c) -= f * h(i, j);
    }
  }
  return q;
}

}  // namespace

QrResult HouseholderQr(const DenseMatrix& a) {
  LACA_CHECK(a.rows() >= a.cols(), "HouseholderQr requires rows >= cols");
  DenseMatrix h = a;
  std::vector<double> tau = Factorize(h);
  QrResult out;
  out.r = DenseMatrix(a.cols(), a.cols());
  for (size_t i = 0; i < a.cols(); ++i) {
    for (size_t j = i; j < a.cols(); ++j) out.r(i, j) = h(i, j);
  }
  out.q = AccumulateQ(h, tau);
  return out;
}

DenseMatrix QrOrthonormal(const DenseMatrix& a) {
  LACA_CHECK(a.rows() >= a.cols(), "QrOrthonormal requires rows >= cols");
  DenseMatrix h = a;
  std::vector<double> tau = Factorize(h);
  return AccumulateQ(h, tau);
}

}  // namespace laca
