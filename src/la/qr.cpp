#include "la/qr.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace laca {
namespace {

// Column-block size for sharding reflector applications: a few columns per
// task keeps dispatch overhead amortized over O(m) work each; independent of
// the worker count so the partition is deterministic.
constexpr size_t kColBlock = 8;

// Panels below this element count run serially even with a pool: the
// per-reflector fan-out would cost more than the arithmetic.
constexpr size_t kParallelPanelMin = 1u << 16;

// In-place Householder factorization of the col-major m x n panel `a`
// (column j at a + j*m); returns the reflector scalars in `tau`. After the
// call the panel holds R in its upper triangle and the (v0-normalized)
// reflector vectors below. The operation sequence matches the classic
// row-major loop exactly (bit-identical results).
void FactorizeColMajor(double* a, size_t m, size_t n, double* tau,
                       ThreadPool* pool) {
  for (size_t j = 0; j < n; ++j) {
    double* colj = a + j * m;
    tau[j] = 0.0;
    // Build the Householder vector for column j.
    double norm_sq = 0.0;
    for (size_t i = j; i < m; ++i) norm_sq += colj[i] * colj[i];
    double norm = std::sqrt(norm_sq);
    if (norm == 0.0) continue;
    double alpha = colj[j] >= 0.0 ? -norm : norm;
    double v0 = colj[j] - alpha;
    // v = (v0, colj[j+1..m]); H = I - tau v v^T with tau = 2 / (v^T v).
    double vtv = v0 * v0;
    for (size_t i = j + 1; i < m; ++i) vtv += colj[i] * colj[i];
    if (vtv == 0.0) continue;
    tau[j] = 2.0 / vtv;
    const double t = tau[j];
    // Apply H to the remaining columns; each column's update is independent
    // and its FP chain fixed, so the fan-out is bit-identical to serial.
    ForEachBlock(pool, n - j - 1, kColBlock,
                 [a, m, j, v0, t, colj](size_t, size_t lo, size_t hi) {
      for (size_t c = j + 1 + lo; c < j + 1 + hi; ++c) {
        double* colc = a + c * m;
        double dot = v0 * colc[j];
        for (size_t i = j + 1; i < m; ++i) dot += colj[i] * colc[i];
        double f = t * dot;
        colc[j] -= f * v0;
        for (size_t i = j + 1; i < m; ++i) colc[i] -= f * colj[i];
      }
    });
    colj[j] = alpha;
    // Store the (unnormalized) reflector below the diagonal; remember v0.
    if (v0 != 0.0) {
      for (size_t i = j + 1; i < m; ++i) colj[i] /= v0;
      tau[j] *= v0 * v0;
    }
  }
}

// Accumulates thin Q (col-major m x n) from the stored reflectors in `h`.
void AccumulateQColMajor(const double* h, size_t m, size_t n,
                         const double* tau, double* q, ThreadPool* pool) {
  std::fill(q, q + m * n, 0.0);
  for (size_t j = 0; j < n; ++j) q[j * m + j] = 1.0;
  // Apply H_j from the left, last reflector first: Q = H_0 H_1 ... H_{n-1} I.
  for (size_t j = n; j-- > 0;) {
    if (tau[j] == 0.0) continue;
    const double* hj = h + j * m;
    const double tj = tau[j];
    ForEachBlock(pool, n, kColBlock,
                 [q, m, j, hj, tj](size_t, size_t lo, size_t hi) {
      for (size_t c = lo; c < hi; ++c) {
        double* qc = q + c * m;
        double dot = qc[j];  // v0 normalized to 1
        for (size_t i = j + 1; i < m; ++i) dot += hj[i] * qc[i];
        double f = tj * dot;
        qc[j] -= f;
        for (size_t i = j + 1; i < m; ++i) qc[i] -= f * hj[i];
      }
    });
  }
}

// Row-major -> col-major copy (and back). Walks the row-major side
// contiguously; the n strided streams stay within the cache's way count for
// the thin panels used here.
void ToColMajor(const DenseMatrix& a, double* cm) {
  const size_t m = a.rows(), n = a.cols();
  for (size_t i = 0; i < m; ++i) {
    const double* row = a.Row(i).data();
    for (size_t j = 0; j < n; ++j) cm[j * m + i] = row[j];
  }
}

void FromColMajor(const double* cm, DenseMatrix* a) {
  const size_t m = a->rows(), n = a->cols();
  for (size_t i = 0; i < m; ++i) {
    double* row = a->Row(i).data();
    for (size_t j = 0; j < n; ++j) row[j] = cm[j * m + i];
  }
}

}  // namespace

void QrOrthonormalInto(const DenseMatrix& a, DenseMatrix* q,
                       QrScratch* scratch, ThreadPool* pool) {
  LACA_CHECK(a.rows() >= a.cols(), "QrOrthonormal requires rows >= cols");
  LACA_CHECK(q != &a, "QrOrthonormal: output aliases input");
  const size_t m = a.rows(), n = a.cols();
  pool = GateBySize(pool, m * n, kParallelPanelMin);
  scratch->a.resize(m * n);
  scratch->q.resize(m * n);
  scratch->tau.resize(n);
  ToColMajor(a, scratch->a.data());
  FactorizeColMajor(scratch->a.data(), m, n, scratch->tau.data(), pool);
  AccumulateQColMajor(scratch->a.data(), m, n, scratch->tau.data(),
                      scratch->q.data(), pool);
  q->Resize(m, n);
  FromColMajor(scratch->q.data(), q);
}

DenseMatrix QrOrthonormal(const DenseMatrix& a) {
  QrScratch scratch;
  DenseMatrix q;
  QrOrthonormalInto(a, &q, &scratch);
  return q;
}

QrResult HouseholderQr(const DenseMatrix& a) {
  LACA_CHECK(a.rows() >= a.cols(), "HouseholderQr requires rows >= cols");
  const size_t m = a.rows(), n = a.cols();
  QrScratch scratch;
  scratch.a.resize(m * n);
  scratch.q.resize(m * n);
  scratch.tau.resize(n);
  ToColMajor(a, scratch.a.data());
  FactorizeColMajor(scratch.a.data(), m, n, scratch.tau.data(), nullptr);
  QrResult out;
  out.r = DenseMatrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) out.r(i, j) = scratch.a[j * m + i];
  }
  AccumulateQColMajor(scratch.a.data(), m, n, scratch.tau.data(),
                      scratch.q.data(), nullptr);
  out.q = DenseMatrix(m, n);
  FromColMajor(scratch.q.data(), &out.q);
  return out;
}

}  // namespace laca
