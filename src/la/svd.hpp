// One-sided Jacobi singular value decomposition.
#ifndef LACA_LA_SVD_HPP_
#define LACA_LA_SVD_HPP_

#include <vector>

#include "la/matrix.hpp"

namespace laca {

/// Thin SVD A = U diag(sigma) V^T of an m x n matrix with m >= n.
struct SvdResult {
  DenseMatrix u;              // m x n, orthonormal columns
  std::vector<double> sigma;  // n singular values, descending
  DenseMatrix v;              // n x n, orthonormal
};

/// Computes the thin SVD via one-sided Jacobi rotations.
///
/// Quadratically convergent and numerically robust for the small projected
/// matrices produced by the randomized range finder (n is the sketch size,
/// a few dozen). Throws on m < n. Cost O(m n^2) per sweep.
SvdResult JacobiSvd(const DenseMatrix& a);

}  // namespace laca

#endif  // LACA_LA_SVD_HPP_
