#include "la/randomized_svd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace laca {
namespace {

// Sparse kernels below this many entry-times-width operations stay serial:
// dispatch would dominate.
constexpr uint64_t kParallelSparseMin = 1u << 16;

ThreadPool* Gate(ThreadPool* pool, uint64_t work) {
  return GateBySize(pool, work, kParallelSparseMin);
}

}  // namespace

AttributeMatrixCsc BuildCsc(const AttributeMatrix& x) {
  AttributeMatrixCsc out;
  out.num_rows = x.num_rows();
  out.num_cols = x.num_cols();
  out.col_ptr.assign(static_cast<size_t>(x.num_cols()) + 1, 0);
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    for (const auto& [col, val] : x.Row(i)) ++out.col_ptr[col + 1];
  }
  for (uint32_t c = 0; c < x.num_cols(); ++c) {
    out.col_ptr[c + 1] += out.col_ptr[c];
  }
  const uint64_t nnz = out.col_ptr.back();
  out.row_idx.resize(nnz);
  out.values.resize(nnz);
  std::vector<uint64_t> cursor(out.col_ptr.begin(), out.col_ptr.end() - 1);
  // Scanning rows in ascending order leaves each column's entries sorted by
  // row — the accumulation order of the row-sparse scatter product, which is
  // what keeps the CSC gather bit-identical to it.
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    for (const auto& [col, val] : x.Row(i)) {
      const uint64_t at = cursor[col]++;
      out.row_idx[at] = i;
      out.values[at] = val;
    }
  }
  return out;
}

void SparseTimesDenseInto(const AttributeMatrix& x, const DenseMatrix& b,
                          DenseMatrix* out, ThreadPool* pool) {
  LACA_CHECK(x.num_cols() == b.rows(), "SparseTimesDense: dimension mismatch");
  LACA_CHECK(out != &b, "SparseTimesDense: output aliases input");
  const size_t s = b.cols();
  out->Resize(x.num_rows(), s);
  pool = Gate(pool, x.num_nonzeros() * s);
  ForEachBlock(pool, x.num_rows(), DenseRowBlock(s),
               [&](size_t, size_t lo, size_t hi) {
    for (NodeId i = static_cast<NodeId>(lo); i < hi; ++i) {
      double* o = out->Row(i).data();
      std::fill(o, o + s, 0.0);
      for (const auto& [col, val] : x.Row(i)) {
        const double* brow = b.Row(col).data();
        for (size_t j = 0; j < s; ++j) o[j] += val * brow[j];
      }
    }
  });
}

DenseMatrix SparseTimesDense(const AttributeMatrix& x, const DenseMatrix& b) {
  DenseMatrix out;
  SparseTimesDenseInto(x, b, &out);
  return out;
}

void SparseTransposeTimesDenseInto(const AttributeMatrixCsc& xt,
                                   const DenseMatrix& q, DenseMatrix* out,
                                   ThreadPool* pool) {
  LACA_CHECK(xt.num_rows == q.rows(),
             "SparseTransposeTimesDense: dimension mismatch");
  LACA_CHECK(out != &q, "SparseTransposeTimesDense: output aliases input");
  const size_t s = q.cols();
  out->Resize(xt.num_cols, s);
  pool = Gate(pool, xt.values.size() * s);
  ForEachBlock(pool, xt.num_cols, DenseRowBlock(s),
               [&](size_t, size_t lo, size_t hi) {
    for (uint32_t c = static_cast<uint32_t>(lo); c < hi; ++c) {
      double* o = out->Row(c).data();
      std::fill(o, o + s, 0.0);
      for (uint64_t e = xt.col_ptr[c]; e < xt.col_ptr[c + 1]; ++e) {
        const double val = xt.values[e];
        const double* qrow = q.Row(xt.row_idx[e]).data();
        for (size_t j = 0; j < s; ++j) o[j] += val * qrow[j];
      }
    }
  });
}

DenseMatrix SparseTransposeTimesDense(const AttributeMatrix& x,
                                      const DenseMatrix& q) {
  DenseMatrix out;
  SparseTransposeTimesDenseInto(BuildCsc(x), q, &out);
  return out;
}

KSvdResult RandomizedKSvd(const AttributeMatrix& x, const KSvdOptions& opts,
                          ThreadPool* pool) {
  LACA_CHECK(opts.rank >= 1, "rank must be >= 1");
  LACA_CHECK(opts.oversample >= 0, "oversample must be >= 0");
  LACA_CHECK(x.num_rows() > 0 && x.num_cols() > 0, "empty matrix");

  const size_t n = x.num_rows();
  const size_t d = x.num_cols();
  const size_t max_rank = std::min(n, d);
  const size_t k = std::min<size_t>(opts.rank, max_rank);
  const size_t s = std::min<size_t>(opts.rank + opts.oversample, max_rank);

  // One-time transposed view serving every X^T leg of the iteration.
  const AttributeMatrixCsc csc = BuildCsc(x);

  // Range finder: Y = X * Omega with Gaussian Omega (d x s), then Q = qr(Y).
  Rng rng(opts.seed);
  DenseMatrix omega(d, s);
  for (double& v : omega.data()) v = rng.Normal();

  // Preallocated panels: the power iterations run allocation-free (the QR
  // scratch reaches its n x s high-water mark on the first call).
  DenseMatrix q, w, npanel, dpanel;
  QrScratch qr_scratch;
  SparseTimesDenseInto(x, omega, &npanel, pool);
  QrOrthonormalInto(npanel, &q, &qr_scratch, pool);

  // Subspace (power) iteration with re-orthonormalization for stability.
  for (int t = 0; t < opts.power_iterations; ++t) {
    SparseTransposeTimesDenseInto(csc, q, &dpanel, pool);
    QrOrthonormalInto(dpanel, &w, &qr_scratch, pool);
    SparseTimesDenseInto(x, w, &npanel, pool);
    QrOrthonormalInto(npanel, &q, &qr_scratch, pool);
  }

  // Project: B = Q^T X (s x d); factor B^T = U_b Sigma V_b^T (d x s panel),
  // so B = V_b Sigma U_b^T and X ~= (Q V_b) Sigma U_b^T.
  SparseTransposeTimesDenseInto(csc, q, &dpanel, pool);  // d x s == B^T
  SvdResult small = JacobiSvd(dpanel);

  KSvdResult out;
  out.u = DenseMatrix(n, k);
  out.v = DenseMatrix(d, k);
  out.sigma.assign(small.sigma.begin(), small.sigma.begin() + k);
  // out.u = Q * V_b[:, :k] — row blocks are independent; the tiny s x s V_b
  // panel stays cache-resident.
  ForEachBlock(Gate(pool, n * s * k), n, DenseRowBlock(k),
               [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const double* qrow = q.Row(i).data();
      double* urow = out.u.Row(i).data();
      for (size_t j = 0; j < k; ++j) {
        double acc = 0.0;
        for (size_t l = 0; l < s; ++l) acc += qrow[l] * small.v(l, j);
        urow[j] = acc;
      }
    }
  });
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < k; ++j) out.v(i, j) = small.u(i, j);
  }
  return out;
}

}  // namespace laca
