#include "la/randomized_svd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace laca {

DenseMatrix SparseTimesDense(const AttributeMatrix& x, const DenseMatrix& b) {
  LACA_CHECK(x.num_cols() == b.rows(), "SparseTimesDense: dimension mismatch");
  const size_t s = b.cols();
  DenseMatrix y(x.num_rows(), s);
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    auto out = y.Row(i);
    for (const auto& [col, val] : x.Row(i)) {
      auto brow = b.Row(col);
      for (size_t j = 0; j < s; ++j) out[j] += val * brow[j];
    }
  }
  return y;
}

DenseMatrix SparseTransposeTimesDense(const AttributeMatrix& x,
                                      const DenseMatrix& q) {
  LACA_CHECK(x.num_rows() == q.rows(),
             "SparseTransposeTimesDense: dimension mismatch");
  const size_t s = q.cols();
  DenseMatrix w(x.num_cols(), s);
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    auto qrow = q.Row(i);
    for (const auto& [col, val] : x.Row(i)) {
      auto out = w.Row(col);
      for (size_t j = 0; j < s; ++j) out[j] += val * qrow[j];
    }
  }
  return w;
}

KSvdResult RandomizedKSvd(const AttributeMatrix& x, const KSvdOptions& opts) {
  LACA_CHECK(opts.rank >= 1, "rank must be >= 1");
  LACA_CHECK(opts.oversample >= 0, "oversample must be >= 0");
  LACA_CHECK(x.num_rows() > 0 && x.num_cols() > 0, "empty matrix");

  const size_t n = x.num_rows();
  const size_t d = x.num_cols();
  const size_t max_rank = std::min(n, d);
  const size_t k = std::min<size_t>(opts.rank, max_rank);
  const size_t s = std::min<size_t>(k + opts.oversample, max_rank);

  // Range finder: Y = X * Omega with Gaussian Omega (d x s), then Q = qr(Y).
  Rng rng(opts.seed);
  DenseMatrix omega(d, s);
  for (double& v : omega.data()) v = rng.Normal();
  DenseMatrix q = QrOrthonormal(SparseTimesDense(x, omega));

  // Subspace (power) iteration with re-orthonormalization for stability.
  for (int t = 0; t < opts.power_iterations; ++t) {
    DenseMatrix w = QrOrthonormal(SparseTransposeTimesDense(x, q));
    q = QrOrthonormal(SparseTimesDense(x, w));
  }

  // Project: B = Q^T X (s x d); factor B^T = U_b Sigma V_b^T (d x s panel),
  // so B = V_b Sigma U_b^T and X ~= (Q V_b) Sigma U_b^T.
  DenseMatrix bt = SparseTransposeTimesDense(x, q);  // d x s == B^T
  SvdResult small = JacobiSvd(bt);

  KSvdResult out;
  out.u = DenseMatrix(n, k);
  out.v = DenseMatrix(d, k);
  out.sigma.assign(small.sigma.begin(), small.sigma.begin() + k);
  // out.u = Q * V_b[:, :k]
  for (size_t i = 0; i < n; ++i) {
    auto qrow = q.Row(i);
    for (size_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (size_t l = 0; l < s; ++l) acc += qrow[l] * small.v(l, j);
      out.u(i, j) = acc;
    }
  }
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < k; ++j) out.v(i, j) = small.u(i, j);
  }
  return out;
}

}  // namespace laca
