#include "la/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace laca {

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  LACA_CHECK(cols_ == other.rows_, "Multiply: dimension mismatch");
  DenseMatrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    double* o = out.data_.data() + i * other.cols_;
    for (size_t l = 0; l < cols_; ++l) {
      const double av = a[l];
      if (av == 0.0) continue;
      const double* b = other.data_.data() + l * other.cols_;
      for (size_t j = 0; j < other.cols_; ++j) o[j] += av * b[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::TransposedMultiply(const DenseMatrix& other) const {
  LACA_CHECK(rows_ == other.rows_, "TransposedMultiply: dimension mismatch");
  DenseMatrix out(cols_, other.cols_);
  for (size_t l = 0; l < rows_; ++l) {
    const double* a = data_.data() + l * cols_;
    const double* b = other.data_.data() + l * other.cols_;
    for (size_t i = 0; i < cols_; ++i) {
      const double av = a[i];
      if (av == 0.0) continue;
      double* o = out.data_.data() + i * other.cols_;
      for (size_t j = 0; j < other.cols_; ++j) o[j] += av * b[j];
    }
  }
  return out;
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::RowDot(size_t i, size_t j) const {
  const double* a = data_.data() + i * cols_;
  const double* b = data_.data() + j * cols_;
  double s = 0.0;
  for (size_t t = 0; t < cols_; ++t) s += a[t] * b[t];
  return s;
}

void DenseMatrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

DenseMatrix DenseMatrix::ConcatColumns(const DenseMatrix& other) const {
  LACA_CHECK(rows_ == other.rows_, "ConcatColumns: row count mismatch");
  DenseMatrix out(rows_, cols_ + other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(i, j);
    for (size_t j = 0; j < other.cols_; ++j) out(i, cols_ + j) = other(i, j);
  }
  return out;
}

}  // namespace laca
