#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace laca {
namespace {

// Inner-dimension panel: B rows touched per pass. 64 rows x (cols <= 512)
// keeps the streamed B panel inside L1/L2 while the output row stays hot.
constexpr size_t kInnerBlock = 64;

}  // namespace

size_t DenseRowBlock(size_t cols) {
  const size_t target = 32 * 1024 / sizeof(double);  // ~32KB of output panel
  return std::clamp<size_t>(target / std::max<size_t>(cols, 1), 16, 1024);
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

void DenseMatrix::MultiplyInto(const DenseMatrix& other, DenseMatrix* out,
                               ThreadPool* pool) const {
  LACA_CHECK(cols_ == other.rows_, "Multiply: dimension mismatch");
  LACA_CHECK(out != this && out != &other, "Multiply: output aliases input");
  out->Resize(rows_, other.cols_);
  const size_t n = other.cols_;
  const double* a_data = data_.data();
  const double* b_data = other.data_.data();
  double* o_data = out->data_.data();
  ForEachBlock(pool, rows_, DenseRowBlock(n),
               [&, this](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      double* o = o_data + i * n;
      std::fill(o, o + n, 0.0);
    }
    // Inner panels in ascending order: each o[j]'s accumulation chain walks
    // l = 0..cols_-1 exactly as the scalar kernel did.
    for (size_t l0 = 0; l0 < cols_; l0 += kInnerBlock) {
      const size_t l1 = std::min(cols_, l0 + kInnerBlock);
      for (size_t i = lo; i < hi; ++i) {
        const double* a = a_data + i * cols_;
        double* o = o_data + i * n;
        for (size_t l = l0; l < l1; ++l) {
          const double av = a[l];
          if (av == 0.0) continue;
          const double* b = b_data + l * n;
          for (size_t j = 0; j < n; ++j) o[j] += av * b[j];
        }
      }
    }
  });
}

void DenseMatrix::TransposedMultiplyInto(const DenseMatrix& other,
                                         DenseMatrix* out,
                                         ThreadPool* pool) const {
  LACA_CHECK(rows_ == other.rows_, "TransposedMultiply: dimension mismatch");
  LACA_CHECK(out != this && out != &other,
             "TransposedMultiply: output aliases input");
  out->Resize(cols_, other.cols_);
  const size_t n = other.cols_;
  const double* a_data = data_.data();
  const double* b_data = other.data_.data();
  double* o_data = out->data_.data();
  // Each block owns a contiguous range of output rows (= columns of this);
  // it walks this's rows l in ascending order, reading the [lo, hi) slice of
  // each row — contiguous — and accumulating into its private output panel.
  ForEachBlock(pool, cols_, DenseRowBlock(n),
               [&, this](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      double* o = o_data + i * n;
      std::fill(o, o + n, 0.0);
    }
    for (size_t l = 0; l < rows_; ++l) {
      const double* a = a_data + l * cols_;
      const double* b = b_data + l * n;
      for (size_t i = lo; i < hi; ++i) {
        const double av = a[i];
        if (av == 0.0) continue;
        double* o = o_data + i * n;
        for (size_t j = 0; j < n; ++j) o[j] += av * b[j];
      }
    }
  });
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  DenseMatrix out;
  MultiplyInto(other, &out);
  return out;
}

DenseMatrix DenseMatrix::TransposedMultiply(const DenseMatrix& other) const {
  DenseMatrix out;
  TransposedMultiplyInto(other, &out);
  return out;
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::RowDot(size_t i, size_t j) const {
  const double* a = data_.data() + i * cols_;
  const double* b = data_.data() + j * cols_;
  double s = 0.0;
  for (size_t t = 0; t < cols_; ++t) s += a[t] * b[t];
  return s;
}

void DenseMatrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

DenseMatrix DenseMatrix::ConcatColumns(const DenseMatrix& other) const {
  LACA_CHECK(rows_ == other.rows_, "ConcatColumns: row count mismatch");
  DenseMatrix out(rows_, cols_ + other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(i, j) = (*this)(i, j);
    for (size_t j = 0; j < other.cols_; ++j) out(i, cols_ + j) = other(i, j);
  }
  return out;
}

}  // namespace laca
