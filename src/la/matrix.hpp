// Dense row-major matrix used by the low-rank attribute machinery.
//
// The product kernels are cache-blocked panel loops (contiguous inner
// accumulation, no per-element operator()) with optional row-block
// parallelism over a ThreadPool. Parallelism is ORDER-PRESERVING: blocks
// partition the output (disjoint writes) and every output element's FP
// accumulation chain walks the inner dimension in ascending order, so
// results are bit-identical to the serial scalar kernel at every thread
// count (DESIGN.md §6).
#ifndef LACA_LA_MATRIX_HPP_
#define LACA_LA_MATRIX_HPP_

#include <cstddef>
#include <span>
#include <vector>

namespace laca {

class ThreadPool;

/// A dense row-major matrix of doubles.
///
/// Sized for the "thin" factors of the paper's preprocessing stage
/// (n x k with k <= a few hundred); not a general BLAS replacement.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a zero-filled rows x cols matrix.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  std::span<double> Row(size_t i) { return {data_.data() + i * cols_, cols_}; }
  std::span<const double> Row(size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Reshapes to rows x cols, reusing the existing allocation when capacity
  /// allows; contents are NOT cleared (callers overwrite). For the
  /// preallocated ping-pong buffers of the preprocessing pipeline.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Returns this^T as a new matrix.
  DenseMatrix Transposed() const;

  /// this * other. Requires cols() == other.rows().
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// this^T * other. Requires rows() == other.rows().
  DenseMatrix TransposedMultiply(const DenseMatrix& other) const;

  /// out = this * other, written into a preallocated (or resized) output.
  /// Cache-blocked over (row panel, inner panel); row panels fan out over
  /// `pool` when non-null. Bit-identical to the serial kernel at every
  /// thread count (inner dimension always accumulates in ascending order).
  /// `out` must not alias this or other.
  void MultiplyInto(const DenseMatrix& other, DenseMatrix* out,
                    ThreadPool* pool = nullptr) const;

  /// out = this^T * other, same contracts as MultiplyInto. Output row
  /// blocks (columns of this) are computed independently; the inner
  /// accumulation walks this's rows in ascending order.
  void TransposedMultiplyInto(const DenseMatrix& other, DenseMatrix* out,
                              ThreadPool* pool = nullptr) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Dot product of rows i and j.
  double RowDot(size_t i, size_t j) const;

  /// Scales all entries by s.
  void Scale(double s);

  /// Horizontal concatenation [this | other]. Requires equal row counts.
  DenseMatrix ConcatColumns(const DenseMatrix& other) const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Row-panel size for the blocked dense kernels: a function of the row
/// width only (targets ~32KB of output panel), never of the worker count,
/// so the block partition — and with it every FP accumulation chain — is
/// identical at every thread count.
size_t DenseRowBlock(size_t cols);

}  // namespace laca

#endif  // LACA_LA_MATRIX_HPP_
