// Dense row-major matrix used by the low-rank attribute machinery.
#ifndef LACA_LA_MATRIX_HPP_
#define LACA_LA_MATRIX_HPP_

#include <cstddef>
#include <span>
#include <vector>

namespace laca {

/// A dense row-major matrix of doubles.
///
/// Sized for the "thin" factors of the paper's preprocessing stage
/// (n x k with k <= a few hundred); not a general BLAS replacement.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a zero-filled rows x cols matrix.
  DenseMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  std::span<double> Row(size_t i) { return {data_.data() + i * cols_, cols_}; }
  std::span<const double> Row(size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Returns this^T as a new matrix.
  DenseMatrix Transposed() const;

  /// this * other. Requires cols() == other.rows().
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// this^T * other. Requires rows() == other.rows().
  DenseMatrix TransposedMultiply(const DenseMatrix& other) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Dot product of rows i and j.
  double RowDot(size_t i, size_t j) const;

  /// Scales all entries by s.
  void Scale(double s);

  /// Horizontal concatenation [this | other]. Requires equal row counts.
  DenseMatrix ConcatColumns(const DenseMatrix& other) const;

 private:
  size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

}  // namespace laca

#endif  // LACA_LA_MATRIX_HPP_
