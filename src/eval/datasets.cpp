#include "eval/datasets.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "data/snapshot_io.hpp"

namespace laca {
namespace {

// One entry per simulated dataset; knobs follow DESIGN.md §3.
AttributedSbmOptions ConfigFor(const std::string& name) {
  AttributedSbmOptions o;
  if (name == "cora-sim") {
    // Citation network: tiny degree, sharp bag-of-words attributes.
    o.num_nodes = 2708;
    o.num_communities = 7;
    o.avg_degree = 4.0;
    o.intra_fraction = 0.78;
    o.attr_dim = 1433;
    o.attr_nnz = 18;
    o.attr_noise = 0.25;
    o.topic_dims = 160;
    o.seed = 11;
  } else if (name == "pubmed-sim") {
    o.num_nodes = 19717;
    o.num_communities = 3;
    o.avg_degree = 4.5;
    o.intra_fraction = 0.8;
    o.attr_dim = 500;
    o.attr_nnz = 24;
    o.attr_noise = 0.3;
    o.topic_dims = 140;
    o.seed = 12;
  } else if (name == "blogcl-sim") {
    // Dense social network, overlapping interest groups, very noisy attrs
    // (the paper's k-SVD denoising shows up here).
    o.num_nodes = 5196;
    o.num_communities = 18;
    o.avg_degree = 120.0;
    o.intra_fraction = 0.55;
    o.edge_noise = 0.1;
    o.attr_dim = 2048;
    o.attr_nnz = 30;
    o.attr_noise = 0.45;
    o.topic_dims = 180;
    o.comms_per_node_max = 3;
    o.seed = 13;
  } else if (name == "flickr-sim") {
    // Highest ground-truth conductance of the suite (paper: 0.765).
    o.num_nodes = 7575;
    o.num_communities = 22;
    o.avg_degree = 115.0;
    o.intra_fraction = 0.35;
    o.edge_noise = 0.2;
    o.attr_dim = 2048;
    o.attr_nnz = 30;
    o.attr_noise = 0.35;
    o.topic_dims = 160;
    o.comms_per_node_max = 3;
    o.seed = 14;
  } else if (name == "arxiv-sim") {
    // Paper: n = 169k; scaled ~4x down, subject-area classes with skew.
    o.num_nodes = 40000;
    o.num_communities = 20;
    o.avg_degree = 14.0;
    o.intra_fraction = 0.7;
    o.edge_noise = 0.05;
    o.attr_dim = 128;
    o.attr_nnz = 24;
    o.attr_noise = 0.3;
    o.topic_dims = 24;
    o.community_size_skew = 0.8;
    o.seed = 15;
  } else if (name == "yelp-sim") {
    // Attribute-dominant ground truth: business types define Ys, structure
    // is weak (paper: SimAttr wins, topology-only LGC collapses).
    o.num_nodes = 50000;
    o.num_communities = 6;
    o.avg_degree = 20.0;
    o.intra_fraction = 0.22;
    o.edge_noise = 0.15;
    o.attr_dim = 300;
    o.attr_nnz = 20;
    o.attr_noise = 0.06;
    o.topic_dims = 60;
    o.comms_per_node_max = 3;
    o.seed = 16;
  } else if (name == "reddit-sim") {
    // Paper: n = 233k, m/n ~ 50; scaled down, same density.
    o.num_nodes = 30000;
    o.num_communities = 41;
    o.avg_degree = 100.0;
    o.intra_fraction = 0.82;
    o.edge_noise = 0.03;
    o.attr_dim = 602;
    o.attr_nnz = 28;
    o.attr_noise = 0.25;
    o.topic_dims = 40;
    o.seed = 17;
  } else if (name == "amazon2m-sim") {
    // Paper: n = 2.45M co-purchases; scaled ~24x down, skewed categories.
    o.num_nodes = 100000;
    o.num_communities = 40;
    o.avg_degree = 50.0;
    o.intra_fraction = 0.75;
    o.edge_noise = 0.05;
    o.attr_dim = 100;
    o.attr_nnz = 16;
    o.attr_noise = 0.2;
    o.topic_dims = 20;
    o.community_size_skew = 0.7;
    o.seed = 18;
  } else if (name == "dblp-sim") {
    // Non-attributed (Table VIII): co-authorship, small tight communities.
    o.num_nodes = 30000;
    o.num_communities = 60;
    o.avg_degree = 7.0;
    o.intra_fraction = 0.85;
    o.attr_dim = 0;
    o.seed = 19;
  } else if (name == "camazon-sim") {
    o.num_nodes = 30000;
    o.num_communities = 400;
    o.avg_degree = 6.0;
    o.intra_fraction = 0.9;
    o.attr_dim = 0;
    o.seed = 20;
  } else if (name == "orkut-sim") {
    // Paper: n = 3M, m/n = 38; scaled down, noisy social communities.
    o.num_nodes = 50000;
    o.num_communities = 80;
    o.avg_degree = 76.0;
    o.intra_fraction = 0.45;
    o.edge_noise = 0.1;
    o.attr_dim = 0;
    o.seed = 21;
  } else {
    LACA_CHECK(false, "unknown dataset: " + name);
  }
  return o;
}

// Generates (or loads from the disk cache) one dataset as an immutable
// snapshot. Runs OUTSIDE the registry lock — only the per-entry once-latch
// serializes it, so two different datasets can generate concurrently.
std::unique_ptr<Dataset> BuildDataset(const std::string& name) {
  // With LACA_DATASET_CACHE set, generated datasets are persisted as
  // snapshot directories (data/snapshot_io.hpp) so repeated bench runs skip
  // regeneration (a large stand-in loads orders of magnitude faster than it
  // generates). A corrupt or stale cache entry falls back to regeneration
  // and is rewritten.
  std::shared_ptr<const DatasetSnapshot> snapshot;
  std::string cache_dir;
  if (const char* dir = std::getenv("LACA_DATASET_CACHE")) {
    cache_dir = std::string(dir) + "/" + name;
    try {
      snapshot = LoadSnapshot(cache_dir);
    } catch (const std::invalid_argument&) {
      // fall through to generation
    }
  }
  if (snapshot == nullptr) {
    SnapshotMetadata meta;
    meta.name = name;
    meta.version = 1;
    meta.source = "generated";
    snapshot = DatasetSnapshot::Create(GenerateAttributedSbm(ConfigFor(name)),
                                       {}, std::move(meta));
    if (!cache_dir.empty()) {
      try {
        SaveSnapshot(*snapshot, cache_dir);
      } catch (const std::invalid_argument&) {
        // cache directory missing or unwritable: caching is best-effort
      }
    }
  }
  const AttributedGraph& data = snapshot->data();
  return std::make_unique<Dataset>(Dataset{
      name, std::move(snapshot), data,
      data.communities.AverageClusterSize()});
}

// The dataset registry. Namespace-scope (not function-local statics) so the
// guarded_by relation is expressible: the registry mutex only guards the map
// probe; each entry's once-latch serializes that entry's build, so a dataset
// generating on first use never serializes an unrelated dataset's first use
// behind it.
struct RegistryEntry {
  std::once_flag once;
  std::unique_ptr<Dataset> dataset;
};
Mutex g_registry_mu;
std::map<std::string, RegistryEntry> g_registry LACA_GUARDED_BY(g_registry_mu);

}  // namespace

const Dataset& GetDataset(const std::string& name) {
  // call_once re-arms on exception (an unknown name throws and stays
  // retriable). The entry pointer stays valid after the probe: std::map
  // never moves nodes, and entries are never erased.
  RegistryEntry* entry;
  {
    MutexLock lock(g_registry_mu);
    entry = &g_registry.try_emplace(name).first->second;
  }
  std::call_once(entry->once, [&] { entry->dataset = BuildDataset(name); });
  return *entry->dataset;
}

bool KnownDataset(const std::string& name) {
  for (const auto& names : {AttributedDatasetNames(), NonAttributedDatasetNames()}) {
    if (std::find(names.begin(), names.end(), name) != names.end()) return true;
  }
  return false;
}

std::vector<std::string> AttributedDatasetNames() {
  return {"cora-sim",  "pubmed-sim", "blogcl-sim", "flickr-sim",
          "arxiv-sim", "yelp-sim",   "reddit-sim", "amazon2m-sim"};
}

std::vector<std::string> SmallAttributedDatasetNames() {
  return {"cora-sim", "pubmed-sim", "blogcl-sim", "flickr-sim"};
}

std::vector<std::string> NonAttributedDatasetNames() {
  return {"dblp-sim", "camazon-sim", "orkut-sim"};
}

std::vector<NodeId> SampleSeeds(const Dataset& dataset, size_t count,
                                uint64_t rng_seed) {
  Rng rng(rng_seed);
  const NodeId n = dataset.num_nodes();
  std::vector<NodeId> seeds;
  seeds.reserve(count);
  size_t attempts = 0;
  while (seeds.size() < count && attempts < count * 100 + 1000) {
    ++attempts;
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (dataset.data.graph.DegreeCount(v) == 0) continue;
    const auto& cs = dataset.data.communities.node_comms[v];
    if (cs.empty()) continue;
    if (dataset.data.communities.members[cs[0]].size() < 2) continue;
    seeds.push_back(v);
  }
  return seeds;
}

size_t BenchSeedCount(size_t default_count) {
  const char* env = std::getenv("LACA_BENCH_SEEDS");
  if (env == nullptr) return default_count;
  const std::optional<uint64_t> v = ParseU64(env);
  return (v && *v > 0) ? static_cast<size_t>(*v) : default_count;
}

}  // namespace laca
