// Experiment runner: a uniform interface over LACA and the 17 baselines,
// with per-dataset preparation (preprocessing stage) and per-seed scoring
// (online stage) timed separately, mirroring Fig. 7's cost split.
#ifndef LACA_EVAL_RUNNER_HPP_
#define LACA_EVAL_RUNNER_HPP_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/sparse_vector.hpp"
#include "common/thread_pool.hpp"
#include "eval/datasets.hpp"

namespace laca {

/// A local-clustering method under evaluation.
class ClusterMethod {
 public:
  virtual ~ClusterMethod() = default;
  virtual std::string name() const = 0;

  /// Whether the method runs on this dataset. Mirrors the "-" entries of
  /// Table V: attribute methods need attributes; methods whose preprocessing
  /// exceeds the paper's time limits on large graphs are gated by size.
  virtual bool Supports(const Dataset& dataset) const;

  /// Per-dataset preprocessing (timed as the preprocessing stage).
  virtual void Prepare(const Dataset& dataset) { (void)dataset; }

  /// Scores nodes for one seed (timed as the online stage). Higher is
  /// better; the evaluator extracts the top |Y_s| nodes.
  virtual SparseVector Score(const Dataset& dataset, NodeId seed) = 0;
};

/// Instantiates a method by its Table V name, e.g. "LACA (C)", "PR-Nibble",
/// "SimAttr (E)". Throws std::invalid_argument for unknown names.
std::unique_ptr<ClusterMethod> MakeMethod(const std::string& name);

/// All 20 method names in Table V order (17 baselines + LACA variants).
std::vector<std::string> AllMethodNames();

/// The diffusion / LGC subset compared in Fig. 6.
std::vector<std::string> DiffusionMethodNames();

/// Aggregate outcome of evaluating one method on one dataset.
struct MethodEvaluation {
  std::string method;
  bool supported = true;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double conductance = 0.0;
  double wcss = 0.0;
  double prepare_seconds = 0.0;
  double online_seconds = 0.0;  // mean per seed
  size_t seeds_evaluated = 0;
};

/// Runs Prepare once, then Score for every seed, extracting |Y_s|-sized
/// clusters and averaging all quality metrics.
MethodEvaluation EvaluateMethod(const Dataset& dataset, ClusterMethod& method,
                                std::span<const NodeId> seeds);

/// Convenience: MakeMethod + EvaluateMethod, returning an unsupported row
/// (printed as "-") when the method is gated on this dataset.
MethodEvaluation EvaluateByName(const Dataset& dataset,
                                const std::string& method,
                                std::span<const NodeId> seeds);

/// The pool EvaluateMethodsParallel fans out on. num_threads == 0 aliases
/// the process-wide SharedPool() (owned stays null); any explicit count
/// builds a dedicated pool of exactly that many workers — NEVER the shared
/// pool, even when the widths coincide, so concurrent shared-pool work can
/// not steal the caller's bounded capacity. Exposed for the regression test.
struct EvalPool {
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = nullptr;
};
EvalPool MakeEvalPool(size_t num_threads);

/// Evaluates several methods on one dataset concurrently (one pool task per
/// method, each with its own ClusterMethod instance; methods never share
/// state). Returns results in `methods` order. Scoring is deterministic, so
/// quality metrics equal the serial EvaluateByName outputs; per-seed timings
/// are subject to scheduling noise and should come from the serial path
/// (Fig. 7) instead. `num_threads` of 0 uses the hardware concurrency.
std::vector<MethodEvaluation> EvaluateMethodsParallel(
    const Dataset& dataset, std::span<const std::string> methods,
    std::span<const NodeId> seeds, size_t num_threads = 0);

/// Formats a metric cell: fixed 3 decimals, or "-" when unsupported.
std::string FormatCell(const MethodEvaluation& eval, double value);

}  // namespace laca

#endif  // LACA_EVAL_RUNNER_HPP_
