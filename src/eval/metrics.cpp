#include "eval/metrics.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace laca {
namespace {

size_t IntersectionSize(std::span<const NodeId> a, std::span<const NodeId> b) {
  const std::span<const NodeId>& small = a.size() <= b.size() ? a : b;
  const std::span<const NodeId>& large = a.size() <= b.size() ? b : a;
  std::unordered_set<NodeId> set(small.begin(), small.end());
  size_t common = 0;
  for (NodeId v : large) common += set.count(v);
  return common;
}

}  // namespace

double Precision(std::span<const NodeId> cluster,
                 std::span<const NodeId> ground_truth) {
  if (cluster.empty()) return 0.0;
  return static_cast<double>(IntersectionSize(cluster, ground_truth)) /
         static_cast<double>(cluster.size());
}

double Recall(std::span<const NodeId> cluster,
              std::span<const NodeId> ground_truth) {
  if (ground_truth.empty()) return 0.0;
  return static_cast<double>(IntersectionSize(cluster, ground_truth)) /
         static_cast<double>(ground_truth.size());
}

double F1Score(std::span<const NodeId> cluster,
               std::span<const NodeId> ground_truth) {
  double p = Precision(cluster, ground_truth);
  double r = Recall(cluster, ground_truth);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double Conductance(const Graph& graph, std::span<const NodeId> cluster) {
  if (cluster.empty()) return 1.0;
  std::unordered_set<NodeId> in(cluster.begin(), cluster.end());
  double volume = 0.0, cut = 0.0;
  for (NodeId u : cluster) {
    volume += graph.Degree(u);
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t e = 0; e < nbrs.size(); ++e) {
      if (!in.count(nbrs[e])) cut += graph.is_weighted() ? wts[e] : 1.0;
    }
  }
  double denom = std::min(volume, graph.TotalVolume() - volume);
  if (denom <= 0.0) return 1.0;
  return cut / denom;
}

double Wcss(const AttributeMatrix& attrs, std::span<const NodeId> cluster) {
  if (cluster.empty()) return 0.0;
  // mu = mean attribute vector; WCSS/|C| = mean ||x_i||^2 - ||mu||^2.
  std::unordered_map<uint32_t, double> mean;
  double mean_norm_sq_acc = 0.0;
  for (NodeId v : cluster) {
    for (const auto& [col, val] : attrs.Row(v)) mean[col] += val;
    mean_norm_sq_acc += attrs.RowNormSq(v);
  }
  const double inv = 1.0 / static_cast<double>(cluster.size());
  double mu_norm_sq = 0.0;
  for (const auto& [col, sum] : mean) {
    double m = sum * inv;
    mu_norm_sq += m * m;
  }
  double result = mean_norm_sq_acc * inv - mu_norm_sq;
  return std::max(result, 0.0);  // guard tiny negative rounding
}

}  // namespace laca
