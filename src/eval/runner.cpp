#include "eval/runner.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "attr/snas.hpp"
#include "attr/tnam.hpp"
#include "clustering/dbscan.hpp"
#include "clustering/spectral.hpp"
#include "common/thread_pool.hpp"
#include "baselines/attrsim.hpp"
#include "baselines/embedding.hpp"
#include "baselines/flow.hpp"
#include "baselines/lgc.hpp"
#include "baselines/linksim.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/cluster.hpp"
#include "core/laca.hpp"
#include "eval/metrics.hpp"

namespace laca {

bool ClusterMethod::Supports(const Dataset& dataset) const {
  (void)dataset;
  return true;
}

namespace {

// ---------------------------------------------------------------------------
// LACA and its ablation.

class LacaMethod : public ClusterMethod {
 public:
  LacaMethod(std::string name, std::optional<SnasMetric> metric)
      : name_(std::move(name)), metric_(metric) {}

  std::string name() const override { return name_; }

  bool Supports(const Dataset& dataset) const override {
    return !metric_.has_value() || dataset.attributed();
  }

  void Prepare(const Dataset& dataset) override {
    if (metric_.has_value()) {
      TnamOptions topts;
      topts.metric = *metric_;
      tnam_.emplace(Tnam::Build(dataset.data.attributes, topts));
    }
    // The scratch arena outlives the per-dataset Laca: re-preparing the same
    // method (another run, another TNAM) rebinds the warm workspace instead
    // of allocating a fresh one, keeping steady-state runs allocation-free
    // (witnessed by workspace().alloc_events()).
    laca_ = std::make_unique<Laca>(dataset.data.graph,
                                   metric_ ? &*tnam_ : nullptr, &workspace_);
  }

  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    (void)dataset;
    LacaOptions opts;
    opts.epsilon = 1e-6;
    return laca_->ComputeBdd(seed, opts).bdd;
  }

 private:
  std::string name_;
  std::optional<SnasMetric> metric_;
  std::optional<Tnam> tnam_;
  DiffusionWorkspace workspace_;
  std::unique_ptr<Laca> laca_;
};

// ---------------------------------------------------------------------------
// LGC baselines.

class PrNibbleMethod : public ClusterMethod {
 public:
  std::string name() const override { return "PR-Nibble"; }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    PrNibbleOptions opts;
    opts.epsilon = 1e-6;
    return PrNibble(dataset.data.graph, seed, opts);
  }
};

class AprNibbleMethod : public ClusterMethod {
 public:
  std::string name() const override { return "APR-Nibble"; }
  bool Supports(const Dataset& dataset) const override {
    return dataset.attributed();
  }
  void Prepare(const Dataset& dataset) override {
    reweighted_ =
        GaussianReweight(dataset.data.graph, dataset.data.attributes, 1.0);
  }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    (void)dataset;
    PrNibbleOptions opts;
    opts.epsilon = 1e-6;
    return AprNibble(reweighted_, seed, opts);
  }

 private:
  Graph reweighted_;
};

class HkRelaxMethod : public ClusterMethod {
 public:
  std::string name() const override { return "HK-Relax"; }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    HkRelaxOptions opts;
    opts.t = 5.0;
    opts.epsilon = 1e-5;
    return HkRelax(dataset.data.graph, seed, opts);
  }
};

class CrdMethod : public ClusterMethod {
 public:
  std::string name() const override { return "CRD"; }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    CrdOptions opts;
    return Crd(dataset.data.graph, seed, opts);
  }
};

class FlowDiffusionMethod : public ClusterMethod {
 public:
  explicit FlowDiffusionMethod(bool weighted)
      : weighted_(weighted) {}
  std::string name() const override { return weighted_ ? "WFD" : "p-Norm FD"; }
  bool Supports(const Dataset& dataset) const override {
    return !weighted_ || dataset.attributed();
  }
  void Prepare(const Dataset& dataset) override {
    if (weighted_) {
      reweighted_ =
          GaussianReweight(dataset.data.graph, dataset.data.attributes, 1.0);
    }
  }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    FlowDiffusionOptions opts;
    opts.size_hint = static_cast<size_t>(
        std::max(dataset.avg_cluster_size, 16.0));
    const Graph& g = weighted_ ? reweighted_ : dataset.data.graph;
    return FlowDiffusion(g, seed, opts);
  }

 private:
  bool weighted_;
  Graph reweighted_;
};

// ---------------------------------------------------------------------------
// Link-similarity baselines.

class LinkSimMethod : public ClusterMethod {
 public:
  LinkSimMethod(std::string name, LinkSimilarity kind)
      : name_(std::move(name)), kind_(kind) {}
  std::string name() const override { return name_; }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    return LinkSimilarityScores(dataset.data.graph, seed, kind_);
  }

 private:
  std::string name_;
  LinkSimilarity kind_;
};

class SimRankMethod : public ClusterMethod {
 public:
  std::string name() const override { return "SimRank"; }
  bool Supports(const Dataset& dataset) const override {
    // The paper reports SimRank only on the four small datasets.
    return dataset.num_nodes() <= 20'000;
  }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    SimRankOptions opts;
    return SimRankScores(dataset.data.graph, seed, opts);
  }
};

// ---------------------------------------------------------------------------
// Attribute-similarity baselines.

class SimAttrMethod : public ClusterMethod {
 public:
  SimAttrMethod(std::string name, SnasMetric metric)
      : name_(std::move(name)), metric_(metric) {}
  std::string name() const override { return name_; }
  bool Supports(const Dataset& dataset) const override {
    return dataset.attributed();
  }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    return SimAttrScores(dataset.data.attributes, seed, metric_);
  }

 private:
  std::string name_;
  SnasMetric metric_;
};

class AttriRankMethod : public ClusterMethod {
 public:
  std::string name() const override { return "AttriRank"; }
  bool Supports(const Dataset& dataset) const override {
    return dataset.attributed();
  }
  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    AttriRankOptions opts;
    return AttriRankScores(dataset.data.graph, dataset.data.attributes, seed,
                           opts);
  }
};

// ---------------------------------------------------------------------------
// Embedding baselines (K-NN / spectral-clustering / DBSCAN extraction, the
// three per-embedding rows of Table V).

class EmbeddingMethod : public ClusterMethod {
 public:
  enum class Kind { kNode2Vec, kSage, kPane, kCfane };
  enum class Extraction { kKnn, kSpectral, kDbscan };
  EmbeddingMethod(std::string name, Kind kind,
                  Extraction extraction = Extraction::kKnn)
      : name_(std::move(name)), kind_(kind), extraction_(extraction) {}
  std::string name() const override { return name_; }

  bool Supports(const Dataset& dataset) const override {
    // The global clustering extractions need all-pairs work over the
    // embedding rows; gate them to the small datasets, mirroring the "-"
    // entries of Table V.
    if (extraction_ != Extraction::kKnn && dataset.num_nodes() > 8'000) {
      return false;
    }
    // Size gates mirror the "-" entries of Table V (preprocessing beyond the
    // paper's 3-day limit on larger graphs).
    switch (kind_) {
      case Kind::kNode2Vec:
        return dataset.num_nodes() <= 60'000;
      case Kind::kSage:
        return dataset.attributed() && dataset.num_nodes() <= 20'000;
      case Kind::kPane:
        return dataset.attributed();
      case Kind::kCfane:
        return dataset.attributed() && dataset.num_nodes() <= 10'000;
    }
    return false;
  }

  void Prepare(const Dataset& dataset) override {
    switch (kind_) {
      case Kind::kNode2Vec: {
        Node2VecOptions opts;
        if (dataset.num_nodes() > 20'000) {
          opts.dim = 32;  // keep large-graph preprocessing tractable
          opts.walks_per_node = 3;
        }
        embedding_ = Node2VecLite(dataset.data.graph, opts);
        break;
      }
      case Kind::kSage: {
        SageOptions opts;
        embedding_ = SageLite(dataset.data.graph, dataset.data.attributes, opts);
        break;
      }
      case Kind::kPane: {
        PaneOptions opts;
        if (dataset.num_nodes() > 20'000) {
          opts.dim = 32;
          opts.iterations = 5;
        }
        embedding_ = PaneLite(dataset.data.graph, dataset.data.attributes, opts);
        break;
      }
      case Kind::kCfane: {
        CfaneOptions opts;
        embedding_ =
            CfaneLite(dataset.data.graph, dataset.data.attributes, opts);
        break;
      }
    }
    switch (extraction_) {
      case Extraction::kKnn:
        break;
      case Extraction::kSpectral: {
        SpectralOptions opts;
        opts.num_clusters = static_cast<uint32_t>(std::clamp<size_t>(
            dataset.data.communities.num_communities(), 2,
            embedding_.vectors.rows()));
        assignment_ = SpectralClustering(embedding_.vectors, opts).assignment;
        break;
      }
      case Extraction::kDbscan: {
        DbscanOptions opts;
        opts.min_pts = 8;
        opts.eps = EstimateDbscanEps(embedding_.vectors, opts.min_pts);
        if (opts.eps <= 0.0) opts.eps = 0.5;  // degenerate embedding
        assignment_ = Dbscan(embedding_.vectors, opts).assignment;
        break;
      }
    }
  }

  SparseVector Score(const Dataset& dataset, NodeId seed) override {
    (void)dataset;
    if (extraction_ == Extraction::kKnn ||
        assignment_[seed] == kDbscanNoise) {
      // DBSCAN noise seeds have no cluster; fall back to K-NN ordering.
      return KnnScores(embedding_, seed);
    }
    // Members of the seed's global cluster, ranked by embedding similarity
    // to the seed (a positive shift keeps all member scores above zero).
    SparseVector scores;
    const uint32_t cluster = assignment_[seed];
    for (NodeId v = 0; v < assignment_.size(); ++v) {
      if (assignment_[v] != cluster) continue;
      scores.Add(v, 2.0 + embedding_.vectors.RowDot(seed, v));
    }
    return scores;
  }

 private:
  std::string name_;
  Kind kind_;
  Extraction extraction_;
  Embedding embedding_;
  std::vector<uint32_t> assignment_;
};

}  // namespace

std::unique_ptr<ClusterMethod> MakeMethod(const std::string& name) {
  if (name == "LACA (C)") {
    return std::make_unique<LacaMethod>(name, SnasMetric::kCosine);
  }
  if (name == "LACA (E)") {
    return std::make_unique<LacaMethod>(name, SnasMetric::kExpCosine);
  }
  if (name == "LACA (w/o SNAS)") {
    return std::make_unique<LacaMethod>(name, std::nullopt);
  }
  if (name == "PR-Nibble") return std::make_unique<PrNibbleMethod>();
  if (name == "APR-Nibble") return std::make_unique<AprNibbleMethod>();
  if (name == "HK-Relax") return std::make_unique<HkRelaxMethod>();
  if (name == "CRD") return std::make_unique<CrdMethod>();
  if (name == "p-Norm FD") return std::make_unique<FlowDiffusionMethod>(false);
  if (name == "WFD") return std::make_unique<FlowDiffusionMethod>(true);
  if (name == "Jaccard") {
    return std::make_unique<LinkSimMethod>(name, LinkSimilarity::kJaccard);
  }
  if (name == "Adamic-Adar") {
    return std::make_unique<LinkSimMethod>(name, LinkSimilarity::kAdamicAdar);
  }
  if (name == "Common-Nbrs") {
    return std::make_unique<LinkSimMethod>(name,
                                           LinkSimilarity::kCommonNeighbors);
  }
  if (name == "SimRank") return std::make_unique<SimRankMethod>();
  if (name == "SimAttr (C)") {
    return std::make_unique<SimAttrMethod>(name, SnasMetric::kCosine);
  }
  if (name == "SimAttr (E)") {
    return std::make_unique<SimAttrMethod>(name, SnasMetric::kExpCosine);
  }
  if (name == "AttriRank") return std::make_unique<AttriRankMethod>();
  // Embedding methods: base name = K-NN extraction; " (SC)" / " (DBSCAN)"
  // suffixes select the global-clustering extractions of Table V.
  std::string base = name;
  EmbeddingMethod::Extraction extraction = EmbeddingMethod::Extraction::kKnn;
  auto strip_suffix = [&base](const std::string& suffix) {
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(), suffix) == 0) {
      base.resize(base.size() - suffix.size());
      return true;
    }
    return false;
  };
  if (strip_suffix(" (SC)")) {
    extraction = EmbeddingMethod::Extraction::kSpectral;
  } else if (strip_suffix(" (DBSCAN)")) {
    extraction = EmbeddingMethod::Extraction::kDbscan;
  }
  static const std::map<std::string, EmbeddingMethod::Kind> kEmbeddings = {
      {"Node2Vec", EmbeddingMethod::Kind::kNode2Vec},
      {"SAGE", EmbeddingMethod::Kind::kSage},
      {"PANE", EmbeddingMethod::Kind::kPane},
      {"CFANE", EmbeddingMethod::Kind::kCfane},
  };
  auto it = kEmbeddings.find(base);
  if (it != kEmbeddings.end()) {
    return std::make_unique<EmbeddingMethod>(name, it->second, extraction);
  }
  LACA_CHECK(false, "unknown method: " + name);
  return nullptr;
}

std::vector<std::string> AllMethodNames() {
  return {"PR-Nibble",         "APR-Nibble",
          "HK-Relax",          "CRD",
          "p-Norm FD",         "WFD",
          "Jaccard",           "Adamic-Adar",
          "Common-Nbrs",       "SimRank",
          "SimAttr (C)",       "SimAttr (E)",
          "AttriRank",         "Node2Vec",
          "Node2Vec (SC)",     "Node2Vec (DBSCAN)",
          "SAGE",              "SAGE (SC)",
          "SAGE (DBSCAN)",     "PANE",
          "PANE (SC)",         "PANE (DBSCAN)",
          "CFANE",             "CFANE (SC)",
          "CFANE (DBSCAN)",    "LACA (C)",
          "LACA (E)",          "LACA (w/o SNAS)"};
}

std::vector<std::string> DiffusionMethodNames() {
  return {"PR-Nibble", "APR-Nibble", "HK-Relax"};
}

MethodEvaluation EvaluateMethod(const Dataset& dataset, ClusterMethod& method,
                                std::span<const NodeId> seeds) {
  MethodEvaluation out;
  out.method = method.name();
  if (!method.Supports(dataset) || seeds.empty()) {
    out.supported = method.Supports(dataset);
    return out;
  }

  Timer prep_timer;
  method.Prepare(dataset);
  out.prepare_seconds = prep_timer.ElapsedSeconds();

  double online_total = 0.0;
  for (NodeId seed : seeds) {
    std::vector<NodeId> truth =
        dataset.data.communities.GroundTruthCluster(seed);
    size_t size = std::max<size_t>(truth.size(), 1);

    Timer online_timer;
    SparseVector scores = method.Score(dataset, seed);
    std::vector<NodeId> cluster = TopKCluster(scores, seed, size);
    if (cluster.size() < size) {
      cluster = PadWithBfs(dataset.data.graph, std::move(cluster), size, seed);
    }
    online_total += online_timer.ElapsedSeconds();

    out.precision += Precision(cluster, truth);
    out.recall += Recall(cluster, truth);
    out.f1 += F1Score(cluster, truth);
    out.conductance += Conductance(dataset.data.graph, cluster);
    if (dataset.attributed()) {
      out.wcss += Wcss(dataset.data.attributes, cluster);
    }
    ++out.seeds_evaluated;
  }
  const double inv = 1.0 / static_cast<double>(out.seeds_evaluated);
  out.precision *= inv;
  out.recall *= inv;
  out.f1 *= inv;
  out.conductance *= inv;
  out.wcss *= inv;
  out.online_seconds = online_total * inv;
  return out;
}

MethodEvaluation EvaluateByName(const Dataset& dataset,
                                const std::string& method,
                                std::span<const NodeId> seeds) {
  std::unique_ptr<ClusterMethod> m = MakeMethod(method);
  return EvaluateMethod(dataset, *m, seeds);
}

EvalPool MakeEvalPool(size_t num_threads) {
  EvalPool result;
  if (num_threads == 0) {
    result.pool = &SharedPool();
    return result;
  }
  // An explicit num_threads ALWAYS gets a dedicated pool, even when it
  // happens to equal the shared pool's width: aliasing SharedPool() would
  // let concurrent shared-pool work steal the caller's bounded capacity,
  // making "honored exactly with a right-sized transient pool" false
  // precisely when the widths coincide (regression-tested).
  result.owned = std::make_unique<ThreadPool>(num_threads);
  result.pool = result.owned.get();
  return result;
}

std::vector<MethodEvaluation> EvaluateMethodsParallel(
    const Dataset& dataset, std::span<const std::string> methods,
    std::span<const NodeId> seeds, size_t num_threads) {
  std::vector<MethodEvaluation> results(methods.size());
  // Default (num_threads == 0): fan out on the process-wide shared pool, no
  // per-call thread spawn. A TaskGroup scopes completion and errors to this
  // batch, so concurrent evaluations on the shared pool stay independent.
  // An explicit num_threads is honored exactly with a right-sized transient
  // pool — callers use it to bound resource usage or to deliberately
  // oversubscribe, neither of which the shared pool's fixed width can do.
  EvalPool eval_pool = MakeEvalPool(num_threads);
  TaskGroup group(*eval_pool.pool);
  for (size_t i = 0; i < methods.size(); ++i) {
    group.Submit([&dataset, &methods, seeds, &results, i] {
      results[i] = EvaluateByName(dataset, methods[i], seeds);
    });
  }
  group.Wait();
  return results;
}

std::string FormatCell(const MethodEvaluation& eval, double value) {
  if (!eval.supported || eval.seeds_evaluated == 0) return "-";
  char buf[32];
  snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace laca
