// Registry of simulated stand-ins for the paper's evaluation datasets.
//
// Table III datasets (Cora .. Amazon2M) and the Table VIII non-attributed
// graphs are not available offline; each entry here is an attributed SBM
// configured to match the original's shape statistics (n, average degree,
// attribute dimensionality, ground-truth overlap and noisiness), with the
// largest graphs scaled down to laptop size. See DESIGN.md §3 for the
// mapping and rationale.
#ifndef LACA_EVAL_DATASETS_HPP_
#define LACA_EVAL_DATASETS_HPP_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset_snapshot.hpp"
#include "graph/generators.hpp"

namespace laca {

/// A generated benchmark dataset. Ownership lives in an immutable
/// DatasetSnapshot (data/dataset_snapshot.hpp) — the same bundle the serving
/// layer acquires — so eval harnesses and a ServingEngine can share one copy
/// of a dataset; `data` is a view into the snapshot kept for the (many)
/// call sites that read components directly.
struct Dataset {
  std::string name;
  std::shared_ptr<const DatasetSnapshot> snapshot;
  const AttributedGraph& data;
  /// Cached mean ground-truth cluster size (the |Ys| column of Table III).
  double avg_cluster_size = 0.0;

  bool attributed() const { return data.attributes.num_cols() > 0; }
  NodeId num_nodes() const { return data.graph.num_nodes(); }
  uint64_t num_edges() const { return data.graph.num_edges(); }
};

/// Returns the named dataset, generating and caching it on first use.
/// Concurrent first uses of DIFFERENT datasets generate in parallel (each
/// entry has its own once-latch; the global registry lock only covers the
/// map probe). Throws std::invalid_argument for unknown names.
const Dataset& GetDataset(const std::string& name);

/// True when `name` resolves to a registry config — without generating the
/// dataset. Lets tests and tools validate names cheaply.
bool KnownDataset(const std::string& name);

/// The 8 attributed stand-ins, smallest first (Table III order).
std::vector<std::string> AttributedDatasetNames();

/// The 4 small attributed stand-ins (where every baseline runs).
std::vector<std::string> SmallAttributedDatasetNames();

/// The 3 non-attributed stand-ins (Table VIII).
std::vector<std::string> NonAttributedDatasetNames();

/// Samples `count` seed nodes whose ground-truth cluster has >= 2 members.
std::vector<NodeId> SampleSeeds(const Dataset& dataset, size_t count,
                                uint64_t rng_seed = 1234);

/// Number of evaluation seeds for benches: the LACA_BENCH_SEEDS environment
/// variable when set, otherwise `default_count`. (The paper uses 500 seeds;
/// benches default lower so the full suite completes quickly.)
size_t BenchSeedCount(size_t default_count);

}  // namespace laca

#endif  // LACA_EVAL_DATASETS_HPP_
