// Clustering quality metrics (Section VI-B and Appendix B-3).
#ifndef LACA_EVAL_METRICS_HPP_
#define LACA_EVAL_METRICS_HPP_

#include <span>
#include <vector>

#include "attr/attribute_matrix.hpp"
#include "graph/graph.hpp"

namespace laca {

/// |C ∩ Y| / |C| — the paper's primary quality metric (Table V).
double Precision(std::span<const NodeId> cluster,
                 std::span<const NodeId> ground_truth);

/// |C ∩ Y| / |Y| — used by the recall-vs-epsilon study (Fig. 6).
double Recall(std::span<const NodeId> cluster,
              std::span<const NodeId> ground_truth);

/// Harmonic mean of precision and recall.
double F1Score(std::span<const NodeId> cluster,
               std::span<const NodeId> ground_truth);

/// Conductance cut(C) / min(vol(C), vol(V \ C)) (Table VII). Returns 1 for
/// empty or whole-graph clusters.
double Conductance(const Graph& graph, std::span<const NodeId> cluster);

/// Within-cluster sum of squares of attribute vectors, normalized per node:
/// (1/|C|) sum_{i in C} ||x_i - mu_C||^2 (Table VII). Lower is more
/// attribute-homogeneous.
double Wcss(const AttributeMatrix& attrs, std::span<const NodeId> cluster);

}  // namespace laca

#endif  // LACA_EVAL_METRICS_HPP_
