// RWR-based graph diffusion (Section IV): GreedyDiffuse, the non-greedy
// power-style variant, and AdaptiveDiffuse.
//
// All three approximate q with 0 <= sum_i f_i pi(v_i, v_t) - q_t <= eps d(v_t)
// (Eq. 14) for a non-negative input vector f, where pi is the RWR score with
// restart factor alpha. Runtime is O(max{|supp(f)|, ||f||_1 / ((1-alpha) eps)}),
// independent of the graph size (Theorems IV.1 / IV.2).
#ifndef LACA_DIFFUSION_DIFFUSION_HPP_
#define LACA_DIFFUSION_DIFFUSION_HPP_

#include <cstdint>
#include <vector>

#include "common/cancel.hpp"
#include "common/diffusion_workspace.hpp"
#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

class ThreadPool;

/// Parameters shared by the diffusion algorithms.
struct DiffusionOptions {
  /// Walk probability alpha in (0, 1): the RWR stops with prob 1 - alpha at
  /// each step (Eq. 6).
  double alpha = 0.8;
  /// Diffusion threshold eps > 0: residues with r_i / d(v_i) >= eps are
  /// converted and pushed (Eq. 15).
  double epsilon = 1e-6;
  /// Adaptive balancing parameter sigma in [0, 1] (Algo. 2). 0 prefers
  /// non-greedy rounds; >= 1 degenerates to GreedyDiffuse.
  double sigma = 0.0;
  /// Minimum support size before a non-greedy round is sharded across the
  /// intra-query pool (see SetIntraQueryPool). Purely a performance knob:
  /// sharded and serial rounds are bit-identical, so flipping mid-run is
  /// safe. Small rounds stay serial — task dispatch would dominate.
  size_t min_parallel_support = 2048;
  /// Cooperative cancellation token (borrowed; null = never cancel). Polled
  /// at every round boundary and every kCancelPollOps push operations in the
  /// serial kernels; a sharded round polls only at its boundaries (the round
  /// is the poll interval there). A tripped token throws CancelledError; the
  /// engine restores the workspace invariants (AbortCall) before letting it
  /// propagate, so the arena stays as warm and flat as after a completed
  /// call.
  const CancelToken* cancel = nullptr;
};

/// Per-call statistics (iteration counts feed Fig. 5 / Table II).
struct DiffusionStats {
  uint64_t iterations = 0;
  uint64_t greedy_rounds = 0;
  uint64_t nongreedy_rounds = 0;
  /// Total edge traversals performed by push operations.
  uint64_t push_work = 0;
  /// Budget consumed by non-greedy rounds (the C_tot of Algo. 2).
  double nongreedy_cost = 0.0;
  /// vol(supp(r)) at termination, as tracked by the kernel (0 for greedy
  /// mode, which never maintains it). Exposed so the parallel-equivalence
  /// tests can require bit-identical volume accounting across thread counts.
  double r_volume = 0.0;
  /// ||r||_1 recorded at the end of every iteration when tracing is enabled.
  std::vector<double> residual_trace;
  bool record_trace = false;
};

/// Reusable diffusion engine over a fixed graph.
///
/// Works on a DiffusionWorkspace sized to the graph so repeated calls (the
/// two diffusions inside LACA, or many seeds in an experiment) perform zero
/// heap allocations after warm-up. Weighted graphs are supported: pushes
/// distribute proportionally to edge weights and thresholds use weighted
/// degrees. Not thread-safe; not copyable (the workspace is call state).
///
/// Extraction contract (the workspace-to-cacheable-vector seam): each call
/// returns a plain SparseVector detached from the workspace — it owns its
/// entries, pins nothing, and is safe to retain, share across threads, and
/// replay long after this engine (or the graph snapshot it ran on) is gone.
/// Its entry ORDER is deterministic for fixed (graph, f, opts): downstream
/// consumers iterate it in order, so order is part of the bit-identity
/// contract the serving layer's diffusion-vector cache relies on
/// (DESIGN.md §13). Anything reordering an extracted vector must reorder
/// deterministically or not at all.
class DiffusionEngine {
 public:
  /// Owns a private workspace bound to `graph`.
  explicit DiffusionEngine(const Graph& graph);

  /// Borrows `workspace` (rebinding it to `graph`); the caller keeps it alive
  /// for the engine's lifetime. Lets one arena serve the engine and
  /// QueuePush on the same thread.
  DiffusionEngine(const Graph& graph, DiffusionWorkspace* workspace);

  DiffusionEngine(const DiffusionEngine&) = delete;
  DiffusionEngine& operator=(const DiffusionEngine&) = delete;

  /// Algo. 1: greedy residue conversion only. `f` must be non-negative.
  SparseVector Greedy(const SparseVector& f, const DiffusionOptions& opts,
                      DiffusionStats* stats = nullptr);

  /// The non-greedy variant (Eq. 17 in every round): converts and pushes the
  /// entire residual each iteration until all residues fall under eps.
  SparseVector NonGreedy(const SparseVector& f, const DiffusionOptions& opts,
                         DiffusionStats* stats = nullptr);

  /// Algo. 2: adaptively interleaves non-greedy rounds (while the cost budget
  /// ||f||_1 / ((1-alpha) eps) allows and the active fraction exceeds sigma)
  /// with greedy rounds.
  SparseVector Adaptive(const SparseVector& f, const DiffusionOptions& opts,
                        DiffusionStats* stats = nullptr);

  const Graph& graph() const { return graph_; }

  /// The scratch arena backing this engine (owned or borrowed).
  const DiffusionWorkspace& workspace() const { return *ws_; }
  DiffusionWorkspace* mutable_workspace() { return ws_; }

  /// Sets the helper pool used to shard non-greedy rounds across threads
  /// (the calling thread participates, so the round runs on
  /// pool->num_threads() + 1 shards). Null restores fully serial rounds.
  /// The pool is borrowed and must outlive the engine's calls; it must be
  /// private to the calling thread's queries (BatchCluster hands each
  /// worker its own). Sharded rounds are bit-identical to serial ones.
  void SetIntraQueryPool(ThreadPool* pool) { intra_pool_ = pool; }
  ThreadPool* intra_query_pool() const { return intra_pool_; }

 private:
  enum class Mode { kGreedy, kNonGreedy, kAdaptive };
  SparseVector Run(Mode mode, const SparseVector& f,
                   const DiffusionOptions& opts, DiffusionStats* stats);

  // The mode-specialized iteration loop; Weighted selects the scatter kernel
  // and TrackVolume elides vol(r) bookkeeping when the mode never reads it.
  template <bool Weighted, bool TrackVolume>
  void RunLoop(Mode mode, const DiffusionOptions& opts, double budget,
               bool record_trace, double r_l1, DiffusionStats* stats,
               uint64_t* iterations, uint64_t* greedy_rounds,
               uint64_t* nongreedy_rounds, uint64_t* push_work,
               double* nongreedy_cost);

  // One non-greedy round sharded over `shards` threads of the intra-query
  // pool (drain phase over contiguous support slices, owner-merge phase over
  // node ranges, serial k-way touch merge). Bit-identical to the serial
  // round body for any shard count; see DESIGN.md §2b for the argument.
  template <bool Weighted, bool TrackVolume>
  void ShardedNonGreedyRound(const DiffusionOptions& opts, size_t shards,
                             double* r, double* r_next, bool record_trace,
                             double* g_total, double* scattered_l1,
                             uint64_t* push_work);

  const Graph& graph_;
  DiffusionWorkspace owned_ws_;  // unused when a workspace is borrowed
  DiffusionWorkspace* ws_;
  ThreadPool* intra_pool_ = nullptr;
  double r_volume_ = 0.0;
};

}  // namespace laca

#endif  // LACA_DIFFUSION_DIFFUSION_HPP_
