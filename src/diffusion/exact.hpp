// Exact (power-iteration) RWR diffusion — the O(m/(1-alpha) log(1/tol))
// reference the local algorithms are tested against.
#ifndef LACA_DIFFUSION_EXACT_HPP_
#define LACA_DIFFUSION_EXACT_HPP_

#include <vector>

#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Computes q_t = sum_i f_i pi(v_i, v_t) exactly (up to `tol` in L1), i.e.
/// the RWR-based graph diffusion of Eq. 7, by truncated Neumann summation
/// q = sum_l (1-alpha) alpha^l f P^l.
std::vector<double> ExactDiffuse(const Graph& graph, const SparseVector& f,
                                 double alpha, double tol = 1e-14);

/// Exact RWR vector pi(v_s, .) (Eq. 6).
std::vector<double> ExactRwr(const Graph& graph, NodeId seed, double alpha,
                             double tol = 1e-14);

}  // namespace laca

#endif  // LACA_DIFFUSION_EXACT_HPP_
