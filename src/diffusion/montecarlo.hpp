// Monte-Carlo RWR estimation — the sampling-based diffusion family [36, 37]
// the paper contrasts AdaptiveDiffuse with (Section IV).
//
// Two estimators are provided:
//   * MonteCarloRwr: plain walk sampling — W independent alpha-decay walks
//     from the seed; pi'(t) = (walks ending at t) / W. Unbiased, but needs
//     W = O(log(n)/eps^2) samples for an additive eps guarantee and exhibits
//     the scattered memory access pattern the paper's matrix-operation design
//     avoids.
//   * ForaDiffuse: FORA-style hybrid — a push phase (GreedyDiffuse) with a
//     coarse threshold, then walk sampling to refine the leftover residuals:
//     pi'(t) = q(t) + sum_i r_i * (walks from i ending at t) / W_i. The push
//     invariant pi = q + sum_i r_i pi(i, .) makes this unbiased too.
//
// Both power bench_ext_diffusion_backends, the engineering ablation that
// justifies the deterministic adaptive design (DESIGN.md §4).
#ifndef LACA_DIFFUSION_MONTECARLO_HPP_
#define LACA_DIFFUSION_MONTECARLO_HPP_

#include <cstdint>

#include "common/diffusion_workspace.hpp"
#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Options for plain Monte-Carlo RWR.
struct MonteCarloOptions {
  /// Restart factor alpha (walk continuation probability, as in Eq. 6).
  double alpha = 0.8;
  /// Number of sampled walks.
  uint64_t num_walks = 100'000;
  /// Hard cap on a single walk's length (the alpha-decay makes longer walks
  /// astronomically unlikely; the cap bounds the worst case).
  uint32_t max_length = 512;
  uint64_t seed = 1;
};

/// Estimates the RWR vector pi(seed, .) by sampling `num_walks` alpha-decay
/// random walks. The estimate at node t is unbiased with variance
/// pi_t (1 - pi_t) / num_walks. Throws std::invalid_argument on bad options
/// or an out-of-range seed node.
SparseVector MonteCarloRwr(const Graph& graph, NodeId seed,
                           const MonteCarloOptions& opts);

/// Options for the FORA-style hybrid estimator.
struct ForaOptions {
  double alpha = 0.8;
  /// Push-phase threshold; larger values shift work from the (deterministic)
  /// push phase to the (randomized) refinement phase.
  double push_epsilon = 1e-4;
  /// Walks sampled per unit of leftover residual mass. The refinement phase
  /// samples ceil(r_i * walks_per_residual_unit) walks from each residual
  /// node v_i.
  double walks_per_residual_unit = 100'000.0;
  uint32_t max_length = 512;
  uint64_t seed = 1;
};

/// FORA-style estimate of pi(seed, .): push with a coarse threshold, then
/// Monte-Carlo refinement of the residual vector. The push phase runs in
/// `workspace` (rebound to `graph` if needed), so per-seed loops on a warm
/// workspace skip the O(n) push-scratch setup.
SparseVector ForaDiffuse(const Graph& graph, NodeId seed,
                         const ForaOptions& opts,
                         DiffusionWorkspace* workspace);

/// Convenience overload using a transient push workspace.
SparseVector ForaDiffuse(const Graph& graph, NodeId seed,
                         const ForaOptions& opts);

}  // namespace laca

#endif  // LACA_DIFFUSION_MONTECARLO_HPP_
