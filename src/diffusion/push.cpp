#include "diffusion/push.hpp"

#include <deque>
#include <vector>

#include "common/error.hpp"

namespace laca {

QueuePushResult QueuePush(const Graph& graph, const SparseVector& f,
                          const QueuePushOptions& opts) {
  LACA_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0, "alpha must be in (0, 1)");
  LACA_CHECK(opts.epsilon > 0.0, "epsilon must be positive");

  const NodeId n = graph.num_nodes();
  std::vector<double> r(n, 0.0), q(n, 0.0);
  std::vector<uint8_t> queued(n, 0);
  std::deque<NodeId> queue;
  std::vector<NodeId> touched;

  auto add_residual = [&](NodeId v, double value) {
    if (r[v] == 0.0 && q[v] == 0.0) touched.push_back(v);
    r[v] += value;
    if (!queued[v] && r[v] >= opts.epsilon * graph.Degree(v)) {
      queued[v] = 1;
      queue.push_back(v);
    }
  };

  for (const auto& e : f.entries()) {
    LACA_CHECK(e.index < n, "input vector index out of range");
    LACA_CHECK(e.value >= 0.0, "input vector must be non-negative");
    if (e.value > 0.0) add_residual(e.index, e.value);
  }

  QueuePushResult result;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    queued[u] = 0;
    const double ru = r[u];
    const double du = graph.Degree(u);
    if (ru < opts.epsilon * du) continue;  // decayed below threshold meanwhile
    r[u] = 0.0;
    q[u] += (1.0 - opts.alpha) * ru;
    ++result.pushes;

    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    result.edge_work += nbrs.size();
    const double spread = opts.alpha * ru / du;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      add_residual(nbrs[i], spread * (graph.is_weighted() ? wts[i] : 1.0));
    }
  }

  for (NodeId v : touched) {
    if (q[v] != 0.0) result.reserve.Add(v, q[v]);
    if (r[v] != 0.0) result.residual.Add(v, r[v]);
  }
  result.reserve.SortByIndex();
  result.residual.SortByIndex();
  return result;
}

}  // namespace laca
