#include "diffusion/push.hpp"

#include "common/error.hpp"

namespace laca {
namespace {

// The push loop, specialized on weightedness so the per-edge path carries no
// is_weighted() branch and no repeated Degree(v) division (inv_degree is a
// precomputed multiply). All state lives in the workspace: `r`/`q` dense
// scratch, the queued flags, and a fixed-capacity FIFO ring — the queued flag
// dedupes enqueues, so at most n entries are ever pending and the ring never
// wraps into itself.
template <bool Weighted>
QueuePushResult QueuePushImpl(const Graph& graph, const SparseVector& f,
                              const QueuePushOptions& opts,
                              DiffusionWorkspace* ws) {
  const NodeId n = graph.num_nodes();
  double* const r = ws->r();
  double* const q = ws->q();
  uint8_t* const queued = ws->queued();
  NodeId* const ring = ws->queue_ring();
  const size_t cap = ws->queue_capacity();
  const double* const deg = graph.degrees().data();
  const double* const inv_deg = ws->inv_degree();
  const EdgeIndex* const offsets = graph.offsets().data();
  const NodeId* const adjacency = graph.adjacency().data();
  const double* const weights = Weighted ? graph.weights().data() : nullptr;
  uint32_t* const stamp = ws->stamp();
  const uint32_t call_stamp = ws->call_stamp();
  std::vector<NodeId>& touched = ws->r_support();
  std::vector<NodeId>& converted = ws->q_support();
  const double alpha = opts.alpha;
  const double eps = opts.epsilon;

  size_t head = 0, tail = 0, pending = 0;
  auto add_residual = [&](NodeId v, double value) {
    // Stamp-deduplicated like the DiffusionEngine kernels, so r_support is
    // duplicate-free across every workspace client — the sharded non-greedy
    // round relies on that to hand each support entry to exactly one drain
    // slice. (The old r==0 && q==0 test was equivalent here but left the
    // invariant per-kernel instead of workspace-wide.)
    if (stamp[v] != call_stamp) {
      stamp[v] = call_stamp;
      touched.push_back(v);
    }
    r[v] += value;
    if (!queued[v] && r[v] >= eps * deg[v]) {
      queued[v] = 1;
      ring[tail] = v;
      tail = tail + 1 == cap ? 0 : tail + 1;
      ++pending;
    }
  };

  // Validate before the first mutation: a mid-seed throw would strand set
  // queued[] flags, breaking the workspace's self-cleaning invariant for
  // every later call.
  for (const auto& e : f.entries()) {
    LACA_CHECK(e.index < n, "input vector index out of range");
    LACA_CHECK(e.value >= 0.0, "input vector must be non-negative");
  }
  for (const auto& e : f.entries()) {
    if (e.value > 0.0) add_residual(e.index, e.value);
  }

  QueuePushResult result;
  while (pending > 0) {
    const NodeId u = ring[head];
    head = head + 1 == cap ? 0 : head + 1;
    --pending;
    queued[u] = 0;
    const double ru = r[u];
    if (ru < eps * deg[u]) continue;  // decayed below threshold meanwhile
    r[u] = 0.0;
    if (q[u] == 0.0) converted.push_back(u);
    q[u] += (1.0 - alpha) * ru;
    ++result.pushes;

    const EdgeIndex begin = offsets[u];
    const EdgeIndex end = offsets[u + 1];
    result.edge_work += end - begin;
    const double spread = alpha * ru * inv_deg[u];
    if constexpr (Weighted) {
      for (EdgeIndex e = begin; e < end; ++e) {
        add_residual(adjacency[e], spread * weights[e]);
      }
    } else {
      for (EdgeIndex e = begin; e < end; ++e) {
        add_residual(adjacency[e], spread);
      }
    }
  }

  result.reserve.mutable_entries().reserve(converted.size());
  result.residual.mutable_entries().reserve(touched.size());
  for (NodeId v : touched) {
    if (q[v] != 0.0) result.reserve.Add(v, q[v]);
    if (r[v] != 0.0) result.residual.Add(v, r[v]);
  }
  result.reserve.SortByIndex();
  result.residual.SortByIndex();
  return result;
}

}  // namespace

QueuePushResult QueuePush(const Graph& graph, const SparseVector& f,
                          const QueuePushOptions& opts,
                          DiffusionWorkspace* workspace) {
  LACA_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0, "alpha must be in (0, 1)");
  LACA_CHECK(opts.epsilon > 0.0, "epsilon must be positive");
  LACA_CHECK(workspace != nullptr, "workspace must not be null");
  workspace->Bind(graph);
  workspace->BeginCall();
  return graph.is_weighted() ? QueuePushImpl<true>(graph, f, opts, workspace)
                             : QueuePushImpl<false>(graph, f, opts, workspace);
}

QueuePushResult QueuePush(const Graph& graph, const SparseVector& f,
                          const QueuePushOptions& opts) {
  DiffusionWorkspace workspace(graph);
  return QueuePush(graph, f, opts, &workspace);
}

}  // namespace laca
