#include "diffusion/exact.hpp"

#include "common/error.hpp"

namespace laca {

std::vector<double> ExactDiffuse(const Graph& graph, const SparseVector& f,
                                 double alpha, double tol) {
  LACA_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  LACA_CHECK(tol > 0.0, "tol must be positive");
  const NodeId n = graph.num_nodes();
  std::vector<double> out(n, 0.0), cur(n, 0.0), next(n, 0.0);
  double cur_l1 = 0.0;
  for (const auto& e : f.entries()) {
    LACA_CHECK(e.index < n, "input index out of range");
    cur[e.index] += e.value;
    cur_l1 += e.value;
  }
  // ||cur||_1 shrinks by alpha each step; stop once the tail is negligible.
  while (cur_l1 > tol) {
    for (NodeId v = 0; v < n; ++v) {
      if (cur[v] == 0.0) continue;
      out[v] += (1.0 - alpha) * cur[v];
      double scale = alpha * cur[v] / graph.Degree(v);
      auto nbrs = graph.Neighbors(v);
      if (graph.is_weighted()) {
        auto wts = graph.NeighborWeights(v);
        for (size_t e = 0; e < nbrs.size(); ++e) next[nbrs[e]] += scale * wts[e];
      } else {
        for (NodeId u : nbrs) next[u] += scale;
      }
    }
    std::swap(cur, next);
    std::fill(next.begin(), next.end(), 0.0);
    cur_l1 *= alpha;
  }
  return out;
}

std::vector<double> ExactRwr(const Graph& graph, NodeId seed, double alpha,
                             double tol) {
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  return ExactDiffuse(graph, SparseVector::Unit(seed), alpha, tol);
}

}  // namespace laca
