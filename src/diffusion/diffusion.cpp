#include "diffusion/diffusion.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace laca {

DiffusionEngine::DiffusionEngine(const Graph& graph)
    : graph_(graph),
      r_(graph.num_nodes(), 0.0),
      q_(graph.num_nodes(), 0.0) {}

void DiffusionEngine::AddResidual(NodeId v, double value) {
  if (value == 0.0) return;
  if (r_[v] == 0.0) {
    r_support_.push_back(v);
    r_volume_ += graph_.Degree(v);
  }
  r_[v] += value;
}

SparseVector DiffusionEngine::Greedy(const SparseVector& f,
                                     const DiffusionOptions& opts,
                                     DiffusionStats* stats) {
  return Run(Mode::kGreedy, f, opts, stats);
}

SparseVector DiffusionEngine::NonGreedy(const SparseVector& f,
                                        const DiffusionOptions& opts,
                                        DiffusionStats* stats) {
  return Run(Mode::kNonGreedy, f, opts, stats);
}

SparseVector DiffusionEngine::Adaptive(const SparseVector& f,
                                       const DiffusionOptions& opts,
                                       DiffusionStats* stats) {
  return Run(Mode::kAdaptive, f, opts, stats);
}

SparseVector DiffusionEngine::Run(Mode mode, const SparseVector& f,
                                  const DiffusionOptions& opts,
                                  DiffusionStats* stats) {
  LACA_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0, "alpha must be in (0,1)");
  LACA_CHECK(opts.epsilon > 0.0, "epsilon must be positive");
  LACA_CHECK(opts.sigma >= 0.0, "sigma must be non-negative");

  // Reset scratch state from any previous call.
  for (NodeId v : r_support_) r_[v] = 0.0;
  for (NodeId v : q_support_) q_[v] = 0.0;
  r_support_.clear();
  q_support_.clear();
  r_volume_ = 0.0;

  // Line 1: r <- f, q <- 0.
  double f_l1 = 0.0;
  for (const auto& e : f.entries()) {
    LACA_CHECK(e.index < graph_.num_nodes(), "input index out of range");
    LACA_CHECK(e.value >= 0.0, "diffusion input must be non-negative");
    AddResidual(e.index, e.value);
    f_l1 += e.value;
  }

  const double alpha = opts.alpha;
  const double eps = opts.epsilon;
  // Cost budget of Algo. 2, Line 4: ||f||_1 / ((1 - alpha) eps).
  const double budget = f_l1 / ((1.0 - alpha) * eps);
  double nongreedy_cost = 0.0;

  std::vector<NodeId> compacted;
  uint64_t iterations = 0, greedy_rounds = 0, nongreedy_rounds = 0;
  uint64_t push_work = 0;

  while (!r_support_.empty()) {
    // Scan the support: compact stale zero entries and find the nodes whose
    // residue meets the threshold of Eq. 15 (gamma candidates).
    compacted.clear();
    gamma_nodes_.clear();
    size_t above_threshold = 0;
    for (NodeId v : r_support_) {
      double rv = r_[v];
      if (rv == 0.0) continue;  // stale entry from a previous extraction
      compacted.push_back(v);
      if (rv >= eps * graph_.Degree(v)) {
        gamma_nodes_.push_back(v);
        ++above_threshold;
      }
    }
    std::swap(r_support_, compacted);
    if (above_threshold == 0) break;  // Algo. 1, Line 4: gamma == 0

    // Adaptive rule (Algo. 2, Line 4): run a non-greedy round when the
    // active fraction exceeds sigma and the cost budget allows it.
    bool nongreedy = false;
    if (mode == Mode::kNonGreedy) {
      nongreedy = true;
    } else if (mode == Mode::kAdaptive) {
      double frac = static_cast<double>(above_threshold) /
                    static_cast<double>(r_support_.size());
      nongreedy = frac > opts.sigma && nongreedy_cost + r_volume_ < budget;
    }
    if (nongreedy) {
      nongreedy_cost += r_volume_;  // Algo. 2, Line 5
      gamma_nodes_ = r_support_;    // Eq. 17 converts the entire residual
      ++nongreedy_rounds;
    } else {
      ++greedy_rounds;
    }

    // Snapshot gamma values and remove them from r (batch semantics of
    // Eq. 16: this round's pushes land in next round's residual).
    gamma_values_.resize(gamma_nodes_.size());
    for (size_t i = 0; i < gamma_nodes_.size(); ++i) {
      NodeId v = gamma_nodes_[i];
      gamma_values_[i] = r_[v];
      r_[v] = 0.0;
      r_volume_ -= graph_.Degree(v);
    }
    if (nongreedy) {
      r_support_.clear();
      r_volume_ = 0.0;  // kill accumulated rounding error
    }

    // Convert (1 - alpha) into reserves; scatter alpha to the neighbors.
    for (size_t i = 0; i < gamma_nodes_.size(); ++i) {
      NodeId v = gamma_nodes_[i];
      double g = gamma_values_[i];
      if (q_[v] == 0.0) q_support_.push_back(v);
      q_[v] += (1.0 - alpha) * g;
      auto nbrs = graph_.Neighbors(v);
      push_work += nbrs.size();
      if (graph_.is_weighted()) {
        auto wts = graph_.NeighborWeights(v);
        double scale = alpha * g / graph_.Degree(v);
        for (size_t e = 0; e < nbrs.size(); ++e) {
          AddResidual(nbrs[e], scale * wts[e]);
        }
      } else {
        double inc = alpha * g / static_cast<double>(nbrs.size());
        for (NodeId u : nbrs) AddResidual(u, inc);
      }
    }

    ++iterations;
    if (stats != nullptr && stats->record_trace) {
      double r_l1 = 0.0;
      for (NodeId v : r_support_) r_l1 += r_[v];
      stats->residual_trace.push_back(r_l1);
    }
  }

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->greedy_rounds = greedy_rounds;
    stats->nongreedy_rounds = nongreedy_rounds;
    stats->push_work = push_work;
    stats->nongreedy_cost = nongreedy_cost;
  }

  SparseVector out;
  std::sort(q_support_.begin(), q_support_.end());
  for (NodeId v : q_support_) {
    if (q_[v] != 0.0) out.Add(v, q_[v]);
  }
  return out;
}

}  // namespace laca
