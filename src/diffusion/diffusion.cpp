#include "diffusion/diffusion.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace laca {
namespace {

// Owner shard of a scatter target: blocks of 16 node ids round-robin across
// shards, so each owner writes 128-byte r_next regions and 64-byte stamp
// regions — no false sharing between merge threads. The function only decides
// WHICH thread applies a target's contributions, never their order, so it is
// free to change without affecting results.
inline size_t OwnerShard(NodeId u, size_t shards) {
  return static_cast<size_t>(u >> 4) % shards;
}

// Upper bound on intra-query shards: keeps the touch-merge cursor array on
// the stack (zero per-round heap traffic) and is far above any sensible
// per-query thread budget.
constexpr size_t kMaxIntraQueryShards = 64;

}  // namespace

DiffusionEngine::DiffusionEngine(const Graph& graph)
    : graph_(graph), owned_ws_(graph), ws_(&owned_ws_) {}

DiffusionEngine::DiffusionEngine(const Graph& graph,
                                 DiffusionWorkspace* workspace)
    : graph_(graph), ws_(workspace) {
  LACA_CHECK(workspace != nullptr, "workspace must not be null");
  ws_->Bind(graph);
}

SparseVector DiffusionEngine::Greedy(const SparseVector& f,
                                     const DiffusionOptions& opts,
                                     DiffusionStats* stats) {
  return Run(Mode::kGreedy, f, opts, stats);
}

SparseVector DiffusionEngine::NonGreedy(const SparseVector& f,
                                        const DiffusionOptions& opts,
                                        DiffusionStats* stats) {
  return Run(Mode::kNonGreedy, f, opts, stats);
}

SparseVector DiffusionEngine::Adaptive(const SparseVector& f,
                                       const DiffusionOptions& opts,
                                       DiffusionStats* stats) {
  return Run(Mode::kAdaptive, f, opts, stats);
}

// The per-iteration loop, specialized so the per-edge path carries no
// is_weighted() branch and no vol(r) bookkeeping unless the mode reads it
// (only adaptive/non-greedy rounds consume r_volume_).
//
// Support representation (DESIGN.md §2): the support list is append-only for
// the whole call and deduplicated by the workspace's per-node epoch stamps —
// a node enters the list the first time its residue becomes non-zero and is
// never removed, so there is no per-round compaction pass and non-greedy
// rounds do not rebuild the list. Entries whose residue has decayed to zero
// are skipped wherever the list is walked. Round structure per mode:
//   * greedy rounds fuse the threshold scan with gamma extraction (one pass
//     over the support, then a scatter over the usually-small gamma batch);
//   * non-greedy rounds skip scanning entirely — an early-exit probe checks
//     that some node still meets Eq. 15, then one pass snapshots the whole
//     residual (batch semantics of Eq. 16) and one pass scatters it;
//   * adaptive rounds use the probe when sigma == 0 (the decision only needs
//     "is any node active" plus the budget) and a counting pass otherwise.
template <bool Weighted, bool TrackVolume>
void DiffusionEngine::RunLoop(Mode mode, const DiffusionOptions& opts,
                              double budget, bool record_trace, double r_l1,
                              DiffusionStats* stats, uint64_t* iterations,
                              uint64_t* greedy_rounds,
                              uint64_t* nongreedy_rounds, uint64_t* push_work,
                              double* nongreedy_cost) {
  double* r = ws_->r();        // residual being drained this round
  double* r_next = ws_->r_other();  // all-zero ping-pong partner (see below)
  double* const q = ws_->q();
  const double* const deg = graph_.degrees().data();
  const double* const inv_deg = ws_->inv_degree();
  const EdgeIndex* const offsets = graph_.offsets().data();
  const NodeId* const adjacency = graph_.adjacency().data();
  const double* const weights = Weighted ? graph_.weights().data() : nullptr;
  uint32_t* const stamp = ws_->stamp();
  const uint32_t call_stamp = ws_->call_stamp();
  uint8_t* const queued = ws_->queued();
  std::vector<NodeId>& support = ws_->r_support();
  std::vector<NodeId>& gamma_ids = ws_->gamma_ids();
  std::vector<double>& gamma_values = ws_->gamma_values();
  std::vector<NodeId>& q_support = ws_->q_support();
  std::vector<NodeId>& candidates = ws_->candidates();
  const double alpha = opts.alpha;
  const double eps = opts.epsilon;

  // Cooperative cancellation: a null token compiles to one pointer test per
  // round and per kCancelPollOps pushes — nothing on the per-edge path. The
  // countdown is shared by every serial poll site so the interval holds
  // across round-type switches.
  const CancelToken* const cancel = opts.cancel;
  uint64_t ops_until_poll = kCancelPollOps;
  auto poll_cancel = [&]() {
    if (cancel != nullptr && --ops_until_poll == 0) {
      ops_until_poll = kCancelPollOps;
      cancel->ThrowIfExpired();
    }
  };

  // Greedy mode never scans for gamma: residues only grow between
  // extractions (every push is non-negative), so the set of nodes meeting
  // Eq. 15 at a round boundary is exactly the set that crossed the threshold
  // at some earlier push — collected into `candidates` at push time and
  // deduplicated by the queued flags. Seed it from the input vector.
  if (mode == Mode::kGreedy) {
    for (NodeId v : support) {
      if (r[v] >= eps * deg[v]) {
        queued[v] = 1;
        candidates.push_back(v);
      }
    }
  }

  // Scatters alpha * g across the neighbors of each gamma node after
  // converting (1 - alpha) g into reserve. Newly touched nodes are appended
  // to the support in frontier order; `ids` may alias support.data() (the
  // stamp dedupe bounds the list by n, so Bind()'s reservation guarantees no
  // reallocation mid-scatter). TrackCandidates additionally records
  // threshold crossings for the greedy no-scan round structure.
  double scattered_l1 = 0.0;
  auto scatter = [&]<bool TrackCandidates>(const NodeId* ids,
                                           const double* values,
                                           size_t count) {
    for (size_t i = 0; i < count; ++i) {
      poll_cancel();
      const double g = values[i];
      if (g == 0.0) continue;  // entry whose residue had already decayed
      const NodeId v = ids[i];
      if (q[v] == 0.0) q_support.push_back(v);
      q[v] += (1.0 - alpha) * g;
      const EdgeIndex begin = offsets[v];
      const EdgeIndex end = offsets[v + 1];
      *push_work += end - begin;
      const double scale = alpha * g * inv_deg[v];
      if (scale == 0.0 || begin == end) continue;  // dangling / underflow
      if (record_trace) scattered_l1 += alpha * g;
      for (EdgeIndex e = begin; e < end; ++e) {
        double value;
        if constexpr (Weighted) {
          value = scale * weights[e];
          if (value == 0.0) continue;
        } else {
          value = scale;
        }
        const NodeId u = adjacency[e];
        const double ru = r[u];
        if (ru == 0.0) {
          if (TrackVolume) r_volume_ += deg[u];
          if (stamp[u] != call_stamp) {
            stamp[u] = call_stamp;
            support.push_back(u);
          }
        }
        const double ru_new = ru + value;
        r[u] = ru_new;
        if constexpr (TrackCandidates) {
          if (!queued[u] && ru_new >= eps * deg[u]) {
            queued[u] = 1;
            candidates.push_back(u);
          }
        }
      }
    }
  };

  while (!support.empty()) {
    // Round boundary: the unconditional poll site. Sharded rounds rely on it
    // exclusively — a poll inside their drain/merge phases would have to
    // propagate an exception across the task group, so there the round is
    // the poll interval.
    if (cancel != nullptr) cancel->ThrowIfExpired();

    // Decide the round type (Algo. 2, Line 4): non-greedy when the active
    // fraction exceeds sigma and the cost budget allows it. gamma == 0
    // (no node meets Eq. 15) terminates every mode.
    bool nongreedy = false;
    if (mode != Mode::kGreedy) {
      const bool budget_ok =
          mode == Mode::kNonGreedy ||
          (TrackVolume && *nongreedy_cost + r_volume_ < budget);
      if (mode == Mode::kNonGreedy || opts.sigma == 0.0) {
        // The decision only needs "does any node meet the threshold", so an
        // early-exit probe replaces the full counting scan.
        bool any_active = false;
        for (NodeId v : support) {
          const double rv = r[v];
          if (rv != 0.0 && rv >= eps * deg[v]) {
            any_active = true;
            break;
          }
        }
        if (!any_active) break;  // Algo. 1, Line 4: gamma == 0
        nongreedy = budget_ok;
      } else {
        size_t live = 0, active = 0;
        for (NodeId v : support) {
          const double rv = r[v];
          if (rv == 0.0) continue;
          ++live;
          if (rv >= eps * deg[v]) ++active;
        }
        if (active == 0) break;  // Algo. 1, Line 4: gamma == 0
        const double frac =
            static_cast<double>(active) / static_cast<double>(live);
        nongreedy = frac > opts.sigma && budget_ok;
      }
    }

    // Snapshot gamma and remove it from r (batch semantics of Eq. 16: this
    // round's pushes land in next round's residual — the snapshot completes
    // before any scatter touches it).
    double g_total = 0.0;
    if (nongreedy) {
      // Eq. 17 converts the entire residual, so no snapshot pass is needed:
      // one fused pass drains r while scattering into the all-zero ping-pong
      // partner r_next, which preserves Eq. 16 batch semantics by
      // construction (reads and writes hit different arrays). The support
      // stays append-only; entries appended mid-pass hold their mass in
      // r_next and are skipped by the fixed iteration count.
      *nongreedy_cost += r_volume_;  // Algo. 2, Line 5
      if (TrackVolume) r_volume_ = 0.0;  // re-accumulated over r_next below
      ++*nongreedy_rounds;
      const size_t count = support.size();
      const size_t shards =
          intra_pool_ != nullptr && count >= opts.min_parallel_support
              ? std::min({intra_pool_->num_threads() + 1, count,
                          kMaxIntraQueryShards})
              : 1;
      if (shards > 1) {
        // Big-round path: the round IS the SpMV over the support, so shard
        // it across the intra-query pool. Bit-identical to the serial body
        // below for any shard count.
        ShardedNonGreedyRound<Weighted, TrackVolume>(
            opts, shards, r, r_next, record_trace, &g_total, &scattered_l1,
            push_work);
      } else {
        for (size_t i = 0; i < count; ++i) {
          poll_cancel();
          const NodeId v = support[i];
          const double rv = r[v];
          if (rv == 0.0) continue;
          r[v] = 0.0;
          g_total += rv;
          if (q[v] == 0.0) q_support.push_back(v);
          q[v] += (1.0 - alpha) * rv;
          const EdgeIndex begin = offsets[v];
          const EdgeIndex end = offsets[v + 1];
          *push_work += end - begin;
          const double scale = alpha * rv * inv_deg[v];
          if (scale == 0.0 || begin == end) continue;  // dangling / underflow
          if (record_trace) scattered_l1 += alpha * rv;
          for (EdgeIndex e = begin; e < end; ++e) {
            double value;
            if constexpr (Weighted) {
              value = scale * weights[e];
              if (value == 0.0) continue;
            } else {
              value = scale;
            }
            const NodeId u = adjacency[e];
            const double ru = r_next[u];
            if (ru == 0.0) {
              if (TrackVolume) r_volume_ += deg[u];
              if (stamp[u] != call_stamp) {
                stamp[u] = call_stamp;
                support.push_back(u);
              }
            }
            r_next[u] = ru + value;
          }
        }
      }
      std::swap(r, r_next);  // r_next is fully drained, hence all-zero
      ws_->SwapR();
    } else if (mode == Mode::kGreedy) {
      // Greedy round, no scan: this round's gamma is exactly the candidate
      // set collected at push time (see the seeding comment above). The two
      // id buffers swap roles so the scatter can refill `candidates` for the
      // next round while `gamma_ids` is being drained.
      if (candidates.empty()) break;  // Algo. 1, Line 4: gamma == 0
      gamma_ids.swap(candidates);
      candidates.clear();
      const size_t count = gamma_ids.size();
      gamma_values.resize(count);
      for (size_t i = 0; i < count; ++i) {
        const NodeId v = gamma_ids[i];
        const double rv = r[v];  // >= eps * deg[v] > 0 by monotonicity
        gamma_values[i] = rv;
        g_total += rv;
        r[v] = 0.0;
        queued[v] = 0;
      }
      ++*greedy_rounds;
      scatter.template operator()<true>(gamma_ids.data(), gamma_values.data(),
                                        count);
    } else {
      // Greedy round inside an adaptive/non-greedy run: nearly every
      // extracted node is re-pushed within a round or two, so re-appending
      // (stamp store + push_back churn) would cost more than skipping the
      // few dead entries — keep the support append-only.
      gamma_ids.clear();
      gamma_values.clear();
      for (NodeId v : support) {
        const double rv = r[v];
        if (rv == 0.0 || rv < eps * deg[v]) continue;
        gamma_ids.push_back(v);
        gamma_values.push_back(rv);
        g_total += rv;
        r[v] = 0.0;
        if (TrackVolume) r_volume_ -= deg[v];
      }
      if (gamma_ids.empty()) break;  // Algo. 1, Line 4: gamma == 0
      ++*greedy_rounds;
      scatter.template operator()<false>(gamma_ids.data(), gamma_values.data(),
                                         gamma_ids.size());
    }

    ++*iterations;
    if (record_trace) {
      // ||r||_1 tracked incrementally: extraction removed g_total, the
      // scatter re-deposited alpha * g per non-dangling gamma node. This
      // replaces the former O(|supp(r)|) re-summation per round.
      r_l1 = r_l1 - g_total + scattered_l1;
      scattered_l1 = 0.0;
      stats->residual_trace.push_back(r_l1);
    }
  }
}

// One non-greedy round sharded across `shards` threads (the calling thread
// plus shards-1 pool helpers). Structure:
//
//   trace pre-pass (serial)  exact g_total / scattered_l1 in serial FP order
//   phase 1 (parallel)       shard s drains support slice [lo_s, hi_s):
//                            zeroes r, converts into q, buckets every scatter
//                            contribution by OwnerShard(target), stamped with
//                            its shard-local emission seq
//   q merge (serial)         concatenate shard q_appends in shard order
//   phase 2 (parallel)       owner o applies buckets (s=0..S-1, o) in (s,seq)
//                            order to r_next/stamp — both owner-exclusive —
//                            recording first touches with their global key
//   touch merge (serial)     k-way merge per-owner touch lists by key: exact
//                            serial support-append and vol(r) FP order
//
// Contiguous slices mean the serial kernel's contribution stream is exactly
// "shard 0's stream, then shard 1's, ...", so (shard, seq) reconstructs the
// serial order wherever it is observable; everywhere else the merge is
// order-insensitive. See DESIGN.md §2b for the full invariant list.
template <bool Weighted, bool TrackVolume>
void DiffusionEngine::ShardedNonGreedyRound(const DiffusionOptions& opts,
                                            size_t shards, double* r,
                                            double* r_next, bool record_trace,
                                            double* g_total,
                                            double* scattered_l1,
                                            uint64_t* push_work) {
  double* const q = ws_->q();
  const double* const deg = graph_.degrees().data();
  const double* const inv_deg = ws_->inv_degree();
  const EdgeIndex* const offsets = graph_.offsets().data();
  const NodeId* const adjacency = graph_.adjacency().data();
  const double* const weights = Weighted ? graph_.weights().data() : nullptr;
  uint32_t* const stamp = ws_->stamp();
  const uint32_t call_stamp = ws_->call_stamp();
  std::vector<NodeId>& support = ws_->r_support();
  std::vector<NodeId>& q_support = ws_->q_support();
  const double alpha = opts.alpha;
  const size_t count = support.size();
  const size_t chunk = (count + shards - 1) / shards;
  std::vector<DiffusionWorkspace::ThreadShard>& shard_state =
      ws_->AcquireShards(shards);

  // Trace accumulators must see the pre-drain residual in support order; the
  // serial body interleaves these adds with the scatter, but each accumulator
  // still receives the same left-to-right sequence this pre-pass produces.
  if (record_trace) {
    for (size_t i = 0; i < count; ++i) {
      const double rv = r[support[i]];
      if (rv == 0.0) continue;
      *g_total += rv;
      const NodeId v = support[i];
      const double scale = alpha * rv * inv_deg[v];
      if (scale == 0.0 || offsets[v] == offsets[v + 1]) continue;
      *scattered_l1 += alpha * rv;
    }
  }

  auto drain_slice = [&](size_t s) {
    DiffusionWorkspace::ThreadShard& mine = shard_state[s];
    const size_t lo = s * chunk;
    const size_t hi = std::min(count, lo + chunk);
    uint32_t seq = 0;  // emission index; < 2^32 contributions per slice
    for (size_t i = lo; i < hi; ++i) {
      const NodeId v = support[i];
      const double rv = r[v];
      if (rv == 0.0) continue;
      r[v] = 0.0;
      if (q[v] == 0.0) mine.q_appends.push_back(v);
      q[v] += (1.0 - alpha) * rv;
      const EdgeIndex begin = offsets[v];
      const EdgeIndex end = offsets[v + 1];
      mine.push_work += end - begin;
      const double scale = alpha * rv * inv_deg[v];
      if (scale == 0.0 || begin == end) continue;  // dangling / underflow
      // The (shard, seq) ordering keys — and with them the whole bit-identity
      // argument — break silently if seq wraps, so fail loudly instead. One
      // slice emitting 2^32 contributions in a round needs >4.29e9 edge
      // traversals; raise min_parallel_support's shard count before relaxing.
      LACA_CHECK(end - begin <=
                     std::numeric_limits<uint32_t>::max() -
                         static_cast<uint64_t>(seq),
                 "sharded round overflowed its per-slice sequence counter");
      for (EdgeIndex e = begin; e < end; ++e) {
        double value;
        if constexpr (Weighted) {
          value = scale * weights[e];
          if (value == 0.0) continue;
        } else {
          value = scale;
        }
        const NodeId u = adjacency[e];
        mine.outgoing[OwnerShard(u, shards)].push_back({u, seq++, value});
      }
    }
  };

  auto apply_owned = [&](size_t o) {
    DiffusionWorkspace::ThreadShard& mine = shard_state[o];
    for (size_t s = 0; s < shards; ++s) {
      for (const DiffusionWorkspace::ShardContribution& c :
           shard_state[s].outgoing[o]) {
        const double ru = r_next[c.target];
        if (ru == 0.0) {
          uint8_t append = 0;
          if (stamp[c.target] != call_stamp) {
            stamp[c.target] = call_stamp;
            append = 1;
          }
          mine.touches.push_back(
              {(static_cast<uint64_t>(s) << 32) | c.seq, c.target, append});
        }
        r_next[c.target] = ru + c.value;
      }
    }
  };

  TaskGroup group(*intra_pool_);
  for (size_t s = 1; s < shards; ++s) {
    group.Submit([&drain_slice, s] { drain_slice(s); });
  }
  drain_slice(0);
  group.Wait();

  // Slices partition the support contiguously, so concatenating the q
  // discoveries in shard order reproduces the serial append order. Bounded
  // by this round's shard count: shard_state is the workspace's high-water
  // vector and may hold more (stale) entries than this round acquired.
  for (size_t s = 0; s < shards; ++s) {
    const DiffusionWorkspace::ThreadShard& shard = shard_state[s];
    q_support.insert(q_support.end(), shard.q_appends.begin(),
                     shard.q_appends.end());
    *push_work += shard.push_work;
  }

  for (size_t o = 1; o < shards; ++o) {
    group.Submit([&apply_owned, o] { apply_owned(o); });
  }
  apply_owned(0);
  group.Wait();

  // K-way merge of the per-owner touch lists (each key-sorted by
  // construction) replays first touches in exact serial order: vol(r)
  // accumulates in the serial FP sequence and the support appends match the
  // serial kernel entry for entry. Touch counts are a small fraction of the
  // scatter work, so this serial tail does not bound scaling.
  size_t heads[kMaxIntraQueryShards] = {0};
  for (;;) {
    size_t best = shards;
    uint64_t best_key = 0;
    for (size_t o = 0; o < shards; ++o) {
      if (heads[o] >= shard_state[o].touches.size()) continue;
      const uint64_t key = shard_state[o].touches[heads[o]].key;
      if (best == shards || key < best_key) {
        best = o;
        best_key = key;
      }
    }
    if (best == shards) break;
    const DiffusionWorkspace::ShardTouch& t =
        shard_state[best].touches[heads[best]++];
    if (TrackVolume) r_volume_ += deg[t.node];
    if (t.append) support.push_back(t.node);
  }

  ws_->AuditShardAllocations();
}

SparseVector DiffusionEngine::Run(Mode mode, const SparseVector& f,
                                  const DiffusionOptions& opts,
                                  DiffusionStats* stats) {
  LACA_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0, "alpha must be in (0,1)");
  LACA_CHECK(opts.epsilon > 0.0, "epsilon must be positive");
  LACA_CHECK(opts.sigma >= 0.0, "sigma must be non-negative");

  // Re-establish the arena (no-op unless a borrowed workspace was rebound)
  // and sparse-clear the previous call's state.
  ws_->Bind(graph_);
  ws_->BeginCall();
  r_volume_ = 0.0;

  // Line 1: r <- f, q <- 0.
  double* const r = ws_->r();
  const double* const deg = graph_.degrees().data();
  uint32_t* const stamp = ws_->stamp();
  const uint32_t call_stamp = ws_->call_stamp();
  std::vector<NodeId>& support = ws_->r_support();
  const bool track_volume = mode != Mode::kGreedy;
  double f_l1 = 0.0;
  for (const auto& e : f.entries()) {
    LACA_CHECK(e.index < graph_.num_nodes(), "input index out of range");
    LACA_CHECK(e.value >= 0.0, "diffusion input must be non-negative");
    if (e.value == 0.0) continue;
    if (r[e.index] == 0.0) {
      if (track_volume) r_volume_ += deg[e.index];
      if (stamp[e.index] != call_stamp) {
        stamp[e.index] = call_stamp;
        support.push_back(e.index);
      }
    }
    r[e.index] += e.value;
    f_l1 += e.value;
  }

  // Cost budget of Algo. 2, Line 4: ||f||_1 / ((1 - alpha) eps).
  const double budget = f_l1 / ((1.0 - opts.alpha) * opts.epsilon);
  const bool record_trace = stats != nullptr && stats->record_trace;
  uint64_t iterations = 0, greedy_rounds = 0, nongreedy_rounds = 0;
  uint64_t push_work = 0;
  double nongreedy_cost = 0.0;

  try {
    if (graph_.is_weighted()) {
      if (mode == Mode::kGreedy) {
        RunLoop<true, false>(mode, opts, budget, record_trace, f_l1, stats,
                             &iterations, &greedy_rounds, &nongreedy_rounds,
                             &push_work, &nongreedy_cost);
      } else {
        RunLoop<true, true>(mode, opts, budget, record_trace, f_l1, stats,
                            &iterations, &greedy_rounds, &nongreedy_rounds,
                            &push_work, &nongreedy_cost);
      }
    } else {
      if (mode == Mode::kGreedy) {
        RunLoop<false, false>(mode, opts, budget, record_trace, f_l1, stats,
                              &iterations, &greedy_rounds, &nongreedy_rounds,
                              &push_work, &nongreedy_cost);
      } else {
        RunLoop<false, true>(mode, opts, budget, record_trace, f_l1, stats,
                             &iterations, &greedy_rounds, &nongreedy_rounds,
                             &push_work, &nongreedy_cost);
      }
    }
  } catch (const CancelledError&) {
    // A tripped token can unwind from any serial poll site, leaving residue
    // in both r generations and queued[] flags standing — state BeginCall()
    // does not cover. AbortCall() restores every invariant sparsely, so the
    // arena is immediately reusable and still allocation-flat.
    ws_->AbortCall();
    throw;
  }

  if (stats != nullptr) {
    stats->iterations = iterations;
    stats->greedy_rounds = greedy_rounds;
    stats->nongreedy_rounds = nongreedy_rounds;
    stats->push_work = push_work;
    stats->nongreedy_cost = nongreedy_cost;
    stats->r_volume = r_volume_;
  }

  std::vector<NodeId>& q_support = ws_->q_support();
  const double* const q = ws_->q();
  const NodeId n = graph_.num_nodes();
  SparseVector out;
  // One exact-size allocation instead of push_back growth churn (q_support is
  // duplicate-free: nodes are recorded at their first q conversion). For
  // dense results a sequential sweep of q beats sorting the support ids.
  out.mutable_entries().reserve(q_support.size());
  if (q_support.size() >= static_cast<size_t>(n) / 8) {
    for (NodeId v = 0; v < n; ++v) {
      if (q[v] != 0.0) out.Add(v, q[v]);
    }
  } else {
    std::sort(q_support.begin(), q_support.end());
    for (NodeId v : q_support) {
      if (q[v] != 0.0) out.Add(v, q[v]);
    }
  }
  return out;
}

}  // namespace laca
