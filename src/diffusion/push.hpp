// Classic queue-driven local push (Andersen–Chung–Lang style) — the
// traversal-based diffusion the paper's matrix-operation design replaces
// (Section IV-A's discussion of memory access patterns).
//
// Kept as a first-class backend so the engineering ablation
// (bench_ext_diffusion_backends) can compare it against GreedyDiffuse /
// AdaptiveDiffuse on identical inputs, and as the push phase of the
// FORA-style hybrid estimator (diffusion/montecarlo.hpp).
#ifndef LACA_DIFFUSION_PUSH_HPP_
#define LACA_DIFFUSION_PUSH_HPP_

#include <cstdint>

#include "common/diffusion_workspace.hpp"
#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Options for the queue-driven push.
struct QueuePushOptions {
  /// Restart factor alpha (same convention as DiffusionOptions).
  double alpha = 0.8;
  /// Push threshold: nodes with r_u / d(u) >= epsilon are pushed.
  double epsilon = 1e-6;
};

/// Outcome of a queue push: the reserve vector plus the final residuals
/// (every residual satisfies r_u / d(u) < epsilon, giving the Eq. 14
/// sandwich 0 <= (f pi)(t) - q_t <= eps * d(t)).
struct QueuePushResult {
  SparseVector reserve;
  SparseVector residual;
  /// Number of single-node push operations performed.
  uint64_t pushes = 0;
  /// Total edge traversals (the classic O(||f||_1/((1-alpha) eps)) quantity).
  uint64_t edge_work = 0;
};

/// Runs the per-node push loop: while some node u holds r_u >= eps * d(u),
/// convert (1-alpha) r_u into reserve and scatter alpha r_u across u's
/// neighbors (weight-proportionally on weighted graphs). `f` must be
/// non-negative. Throws std::invalid_argument on bad options.
///
/// Works entirely inside `workspace` (rebound to `graph` if needed): repeated
/// calls on a warm workspace perform zero O(n) allocation or reset.
QueuePushResult QueuePush(const Graph& graph, const SparseVector& f,
                          const QueuePushOptions& opts,
                          DiffusionWorkspace* workspace);

/// Convenience overload that allocates a transient workspace. Prefer the
/// workspace overload anywhere QueuePush runs more than once per graph.
QueuePushResult QueuePush(const Graph& graph, const SparseVector& f,
                          const QueuePushOptions& opts);

}  // namespace laca

#endif  // LACA_DIFFUSION_PUSH_HPP_
