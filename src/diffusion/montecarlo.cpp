#include "diffusion/montecarlo.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "diffusion/push.hpp"

namespace laca {
namespace {

/// Walks from `start` with continuation probability alpha and returns the
/// terminal node. Weighted graphs choose neighbors weight-proportionally.
NodeId SampleWalkEnd(const Graph& graph, NodeId start, double alpha,
                     uint32_t max_length, Rng* rng) {
  NodeId cur = start;
  for (uint32_t step = 0; step < max_length; ++step) {
    if (!rng->Bernoulli(alpha)) break;
    auto nbrs = graph.Neighbors(cur);
    if (nbrs.empty()) break;  // dangling node: the walk is stuck
    if (!graph.is_weighted()) {
      cur = nbrs[rng->UniformInt(nbrs.size())];
      continue;
    }
    auto wts = graph.NeighborWeights(cur);
    double target = rng->Uniform() * graph.Degree(cur);
    double acc = 0.0;
    NodeId chosen = nbrs.back();
    for (size_t i = 0; i < nbrs.size(); ++i) {
      acc += wts[i];
      if (target < acc) {
        chosen = nbrs[i];
        break;
      }
    }
    cur = chosen;
  }
  return cur;
}

}  // namespace

SparseVector MonteCarloRwr(const Graph& graph, NodeId seed,
                           const MonteCarloOptions& opts) {
  LACA_CHECK(seed < graph.num_nodes(), "seed node out of range");
  LACA_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0, "alpha must be in (0, 1)");
  LACA_CHECK(opts.num_walks > 0, "num_walks must be positive");

  std::vector<double> counts(graph.num_nodes(), 0.0);
  std::vector<NodeId> touched;
  Rng rng(opts.seed);
  for (uint64_t w = 0; w < opts.num_walks; ++w) {
    NodeId end = SampleWalkEnd(graph, seed, opts.alpha, opts.max_length, &rng);
    if (counts[end] == 0.0) touched.push_back(end);
    counts[end] += 1.0;
  }

  SparseVector pi;
  const double inv = 1.0 / static_cast<double>(opts.num_walks);
  for (NodeId v : touched) pi.Add(v, counts[v] * inv);
  pi.SortByIndex();
  return pi;
}

SparseVector ForaDiffuse(const Graph& graph, NodeId seed,
                         const ForaOptions& opts) {
  DiffusionWorkspace workspace(graph);
  return ForaDiffuse(graph, seed, opts, &workspace);
}

SparseVector ForaDiffuse(const Graph& graph, NodeId seed,
                         const ForaOptions& opts,
                         DiffusionWorkspace* workspace) {
  LACA_CHECK(seed < graph.num_nodes(), "seed node out of range");
  LACA_CHECK(opts.walks_per_residual_unit > 0.0,
             "walks_per_residual_unit must be positive");

  QueuePushOptions push_opts;
  push_opts.alpha = opts.alpha;
  push_opts.epsilon = opts.push_epsilon;
  QueuePushResult pushed =
      QueuePush(graph, SparseVector::Unit(seed), push_opts, workspace);

  // Refinement: pi(s, t) = q(t) + sum_i r_i pi(i, t); estimate each pi(i, .)
  // with ceil(r_i * walks_per_residual_unit) sampled walks. Accumulate into a
  // dense scratch because walk ends scatter widely.
  std::vector<double> estimate(graph.num_nodes(), 0.0);
  std::vector<NodeId> touched;
  auto add = [&](NodeId v, double value) {
    if (estimate[v] == 0.0) touched.push_back(v);
    estimate[v] += value;
  };
  for (const auto& e : pushed.reserve.entries()) add(e.index, e.value);

  Rng rng(opts.seed);
  for (const auto& e : pushed.residual.entries()) {
    const uint64_t walks = static_cast<uint64_t>(
        std::ceil(e.value * opts.walks_per_residual_unit));
    const double weight = e.value / static_cast<double>(walks);
    for (uint64_t w = 0; w < walks; ++w) {
      add(SampleWalkEnd(graph, e.index, opts.alpha, opts.max_length, &rng),
          weight);
    }
  }

  SparseVector pi;
  for (NodeId v : touched) pi.Add(v, estimate[v]);
  pi.SortByIndex();
  return pi;
}

}  // namespace laca
