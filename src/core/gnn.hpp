// Section V-C: the GNN view of LACA.
//
// Lemma V.6 shows the graph-signal-denoising problem (Definition V.5) is
// solved by the smoothed representations H = sum_l (1-alpha) alpha^l P^l H0.
// With H0 = Z (the TNAM) and Eq. 10 in force, the BDD factorizes as
//   rho_t = h(s) . h(t),
// i.e. LACA's local cluster is the K-NN of the seed among GNN-style
// embeddings — found without materializing H (Section V-C). This module
// materializes H anyway: it is the executable form of that equivalence
// (cross-checked against ExactBdd in tests) and a whole-graph embedding
// utility in its own right (examples/).
#ifndef LACA_CORE_GNN_HPP_
#define LACA_CORE_GNN_HPP_

#include <vector>

#include "attr/tnam.hpp"
#include "graph/graph.hpp"
#include "la/matrix.hpp"

namespace laca {

/// Options for the smoothing propagation.
struct GnnSmoothingOptions {
  /// Smoothness hyperparameter alpha of Eq. 20 (equals the RWR restart
  /// factor in the Lemma V.6 closed form).
  double alpha = 0.8;
  /// Series truncation: propagate until the dropped tail alpha^(L+1) falls
  /// below this tolerance. 0 < tolerance < 1.
  double tolerance = 1e-12;
  /// Hard cap on propagation rounds (safety for alpha close to 1).
  int max_hops = 4096;
};

/// Materializes H = sum_l (1-alpha) alpha^l P^l H0 by forward propagation.
/// `h0` must have one row per node. O(L (m + n) k) time and O(nk) memory —
/// the global cost LACA's local exploration avoids. Throws
/// std::invalid_argument on shape mismatches or bad options.
DenseMatrix SmoothEmbeddings(const Graph& graph, const DenseMatrix& h0,
                             const GnnSmoothingOptions& opts);

/// The Section V-C identity made executable: smooths the TNAM and returns
///   rho_t = h(seed) . h(t)  for all t,
/// the exact BDD under Eq. 10. O(nk) per call after the O(L m k) smoothing;
/// use GnnBddScorer below to amortize the smoothing across seeds.
std::vector<double> BddViaEmbeddings(const Graph& graph, const Tnam& tnam,
                                     NodeId seed,
                                     const GnnSmoothingOptions& opts);

/// Amortized variant: smooths once, then answers rho(seed, .) queries as
/// embedding dot products — the "global GNN + K-NN" strawman of Section V-C
/// whose per-seed cost is Theta(n k) regardless of cluster size.
class GnnBddScorer {
 public:
  GnnBddScorer(const Graph& graph, const Tnam& tnam,
               const GnnSmoothingOptions& opts);

  /// rho(seed, t) for all t (length n).
  std::vector<double> Score(NodeId seed) const;

  const DenseMatrix& embeddings() const { return h_; }

 private:
  DenseMatrix h_;
};

}  // namespace laca

#endif  // LACA_CORE_GNN_HPP_
