#include "core/thread_budget.hpp"

#include <algorithm>
#include <thread>

namespace laca {

TwoLevelBudget SplitThreadBudget(size_t max_workers, size_t total_threads,
                                 size_t intra_override) {
  size_t total = total_threads;
  if (total == 0) {
    total = std::max(1u, std::thread::hardware_concurrency());
  }
  TwoLevelBudget budget;
  budget.workers = std::max<size_t>(
      1, max_workers == 0 ? total : std::min(max_workers, total));
  budget.per_worker.resize(budget.workers);
  // Fair-share distribution of the whole budget: base threads each, the
  // first `extra` workers one more. Sum == max(total, workers), and every
  // worker gets at least itself.
  const size_t base = std::max<size_t>(1, total / budget.workers);
  const size_t extra = total > budget.workers ? total % budget.workers : 0;
  for (size_t w = 0; w < budget.workers; ++w) {
    size_t share = base + (w < extra ? 1 : 0);
    if (intra_override > 0) share = std::min(share, intra_override);
    budget.per_worker[w] = share;
  }
  return budget;
}

}  // namespace laca
