// LACA (Algo. 4): local BDD approximation over attributed graphs.
#ifndef LACA_CORE_LACA_HPP_
#define LACA_CORE_LACA_HPP_

#include <vector>

#include "attr/tnam.hpp"
#include "common/sparse_vector.hpp"
#include "diffusion/diffusion.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Online-stage options of LACA.
struct LacaOptions {
  /// Restart factor alpha of the underlying RWR (paper sweeps 0..0.9).
  double alpha = 0.8;
  /// Diffusion threshold eps; output volume and cost are O(1/((1-alpha) eps)).
  double epsilon = 1e-6;
  /// AdaptiveDiffuse balance parameter sigma.
  double sigma = 0.0;
  /// Ablation switch (Table VI, "w/o AdaptiveDiffuse"): use GreedyDiffuse.
  bool use_adaptive = true;
  /// Minimum support size before non-greedy rounds shard across the
  /// intra-query pool (forwarded to DiffusionOptions; inert without one).
  size_t min_parallel_support = 2048;
  /// Cooperative cancellation token (borrowed; null = never cancel).
  /// Forwarded to both diffusion calls and polled in the Step-2 kernel, so a
  /// deadline trips within one poll interval anywhere in Algo. 4. A tripped
  /// token throws CancelledError; the workspace is restored before it
  /// propagates, so the caller can immediately reuse this Laca.
  const CancelToken* cancel = nullptr;

  DiffusionOptions ToDiffusionOptions() const {
    return DiffusionOptions{alpha, epsilon, sigma, min_parallel_support,
                            cancel};
  }
};

/// Outcome of one LACA invocation.
struct LacaResult {
  /// The approximate BDD vector rho' (degree-normalized, Line 6 of Algo. 4).
  SparseVector bdd;
  /// Statistics of the two diffusion calls (Steps 1 and 3).
  DiffusionStats rwr_stats, bdd_stats;
  /// |supp(pi')| after Step 1.
  size_t rwr_support = 0;
  /// ||phi'||_1 after Step 2.
  double phi_l1 = 0.0;
};

/// The LACA solver. Construct once per (graph, TNAM) pair; each ComputeBdd /
/// Cluster call is a local operation whose cost is O(k / ((1-alpha) eps)),
/// independent of the graph size (Section V-B).
///
/// Passing a null TNAM selects the LACA (w/o SNAS) ablation: the SNAS
/// degenerates to the identity and the BDD to the CoSimRank-style
/// topology-only measure (Remark, Section II-C).
class Laca {
 public:
  /// `tnam` may be null (w/o SNAS mode); when non-null it must cover all
  /// graph nodes. The referenced graph and TNAM must outlive this object.
  Laca(const Graph& graph, const Tnam* tnam);

  /// As above, but diffusing on a borrowed scratch arena (rebound to
  /// `graph`) instead of a private one. Lets long-lived harnesses keep one
  /// warm workspace across Laca instances — e.g. re-preparing with a new
  /// TNAM per run — so steady-state runs stay allocation-free.
  Laca(const Graph& graph, const Tnam* tnam, DiffusionWorkspace* workspace);

  /// Runs Algo. 4 and returns the approximate BDD vector.
  LacaResult ComputeBdd(NodeId seed, const LacaOptions& opts);

  /// As ComputeBdd; additionally moves the Step-1 RWR vector pi' into
  /// `*rwr_out` (when non-null) after Steps 2-3 consumed it. The extracted
  /// vector preserves its exact entry order — the Step-2/3 sweeps iterate
  /// it in order, so replaying it through ComputeBddFromRwr under the same
  /// (alpha, eps, sigma) reproduces this call's result bit for bit. This is
  /// the serving layer's diffusion-tier cache seam (DESIGN.md §13).
  LacaResult ComputeBdd(NodeId seed, const LacaOptions& opts,
                        SparseVector* rwr_out);

  /// Steps 2-3 of Algo. 4 over a precomputed Step-1 vector `rwr` (as
  /// extracted by the rwr_out overload under the SAME alpha/eps/sigma —
  /// sigma parameterizes Step 1, so a pi' from a different sigma is a
  /// different vector, not a reusable one). rwr_stats stays zero: no
  /// Step-1 diffusion ran.
  LacaResult ComputeBddFromRwr(NodeId seed, const SparseVector& rwr,
                               const LacaOptions& opts);

  /// Runs Algo. 4 and extracts the `size` nodes with the largest BDD values
  /// (seed included, BFS-padded if the explored region is too small).
  std::vector<NodeId> Cluster(NodeId seed, size_t size, const LacaOptions& opts);

  /// As Cluster, extracting pi' like the ComputeBdd overload.
  std::vector<NodeId> Cluster(NodeId seed, size_t size, const LacaOptions& opts,
                              SparseVector* rwr_out);

  /// Cluster over a precomputed Step-1 vector (ComputeBddFromRwr contract).
  std::vector<NodeId> ClusterFromRwr(NodeId seed, size_t size,
                                     const SparseVector& rwr,
                                     const LacaOptions& opts);

  /// Algo. 4 with an arbitrary SNAS provider. When `snas` is actually a
  /// `Tnam` covering the graph, Step 2 routes through the fused batched
  /// kernel (one AccumulateRows pass for psi, one DotRows pass for phi:
  /// O(|supp(pi')| k), identical to ComputeBdd). Any other provider falls
  /// back to the generic O(|supp(pi')|^2) double loop of virtual Snas(j, i)
  /// calls restricted to supp(pi') — quadratic in the support, so callers in
  /// that regime (the alternative-similarity experiments of Table XI, whose
  /// metrics admit no low-rank form) should pick a coarser epsilon to keep
  /// Step 2 affordable.
  LacaResult ComputeBddWithProvider(NodeId seed, const SnasProvider& snas,
                                    const LacaOptions& opts);

  const Graph& graph() const { return graph_; }
  bool has_snas() const { return tnam_ != nullptr; }

  /// The diffusion scratch arena (owned or borrowed); its alloc_events()
  /// counter witnesses the zero-allocation steady state across queries.
  const DiffusionWorkspace& workspace() const { return engine_.workspace(); }

  /// Forwards the intra-query helper pool to the diffusion engine: big
  /// non-greedy rounds shard across it (see DiffusionEngine). The pool must
  /// be private to this Laca's calling thread and outlive its calls.
  void SetIntraQueryPool(ThreadPool* pool) { engine_.SetIntraQueryPool(pool); }

 private:
  // Step 2 (Eqs. 12-13) through the fused TNAM kernels; shared by
  // ComputeBdd and the Tnam fast path of ComputeBddWithProvider. `cancel`
  // (may be null) is polled during the phi assembly sweep.
  SparseVector FusedSnasStep(const Tnam& tnam, const SparseVector& pi,
                             const CancelToken* cancel);

  // Steps 2-3 over a Step-1 vector `pi`: the single code path behind both
  // the cold ComputeBdd and the cached ComputeBddFromRwr, so the two cannot
  // drift apart numerically. Fills result's bdd/bdd_stats/phi_l1.
  void FinishBddFromRwr(const SparseVector& pi, const LacaOptions& opts,
                        LacaResult* result);

  const Graph& graph_;
  const Tnam* tnam_;
  DiffusionEngine engine_;
  std::vector<double> psi_;   // Step 2 scratch: Eq. 12 aggregate
  std::vector<double> dots_;  // Step 2 scratch: Eq. 13 batched dots
};

}  // namespace laca

#endif  // LACA_CORE_LACA_HPP_
