// Batch local clustering: many seeds over a shared graph + TNAM.
//
// The paper's evaluation protocol answers 500 seed queries per dataset; each
// query is an independent local computation, so a deployment fans them out
// over threads. The graph and TNAM are shared read-only; every worker owns a
// private Laca instance (the diffusion scratch is per-worker), so results are
// bit-identical to the serial loop regardless of thread count.
#ifndef LACA_CORE_BATCH_HPP_
#define LACA_CORE_BATCH_HPP_

#include <cstddef>
#include <span>
#include <vector>

#include "core/laca.hpp"

namespace laca {

/// One local-clustering request.
struct BatchQuery {
  NodeId seed = 0;
  /// Requested cluster size |C_s| (the paper sets it to |Y_s|).
  size_t size = 1;
};

/// Work distribution strategy for BatchCluster.
enum class BatchSchedule {
  /// Workers pull queries off a shared atomic counter: skewed per-seed costs
  /// rebalance automatically. The default.
  kDynamic,
  /// One contiguous chunk per worker. Kept for scheduler-comparison
  /// benchmarks; skewed seed costs serialize on the slowest chunk.
  kStaticChunk,
};

/// Options for BatchCluster.
struct BatchClusterOptions {
  LacaOptions laca;
  /// Total thread budget; 0 uses the hardware concurrency. Distributed by
  /// two-level scheduling: with more queries than threads, every thread is
  /// an across-seed worker (one warm Laca each); with fewer queries than
  /// threads (the few-large-seeds / big-graph regime), the surplus becomes
  /// per-worker intra-query helper pools that shard big non-greedy rounds.
  /// Results are bit-identical for every split.
  size_t num_threads = 0;
  BatchSchedule schedule = BatchSchedule::kDynamic;
  /// Ceiling on the per-worker intra-query thread budget (including the
  /// worker itself): 0 = auto (distribute the num_threads surplus), 1 =
  /// force serial queries, k > 1 = at most k-1 helper threads per worker.
  /// The combined fleet (workers + helpers) is always clamped to the
  /// num_threads budget — a 16-worker batch with intra_query_threads=4 no
  /// longer spawns 64 threads on an 8-thread budget (see SplitThreadBudget).
  size_t intra_query_threads = 0;
};

/// Answers every query with Laca::Cluster. Results are returned in query
/// order and are independent of `num_threads`. Throws std::invalid_argument
/// on invalid queries (bad seed / zero size), like the serial API.
std::vector<std::vector<NodeId>> BatchCluster(const Graph& graph,
                                              const Tnam* tnam,
                                              std::span<const BatchQuery> queries,
                                              const BatchClusterOptions& opts);

}  // namespace laca

#endif  // LACA_CORE_BATCH_HPP_
