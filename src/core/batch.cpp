#include "core/batch.hpp"

#include <algorithm>
#include <thread>

#include "common/thread_pool.hpp"

namespace laca {

std::vector<std::vector<NodeId>> BatchCluster(
    const Graph& graph, const Tnam* tnam, std::span<const BatchQuery> queries,
    const BatchClusterOptions& opts) {
  std::vector<std::vector<NodeId>> results(queries.size());
  if (queries.empty()) return results;

  size_t workers = opts.num_threads;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, queries.size());

  // One contiguous chunk per worker; each worker owns a private Laca so the
  // dense diffusion scratch is never shared.
  const size_t chunk = (queries.size() + workers - 1) / workers;
  ThreadPool pool(workers);
  for (size_t lo = 0; lo < queries.size(); lo += chunk) {
    const size_t hi = std::min(lo + chunk, queries.size());
    pool.Submit([&, lo, hi] {
      Laca laca(graph, tnam);
      for (size_t i = lo; i < hi; ++i) {
        results[i] = laca.Cluster(queries[i].seed, queries[i].size, opts.laca);
      }
    });
  }
  pool.Wait();
  return results;
}

}  // namespace laca
