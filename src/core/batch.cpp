#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <optional>

#include "common/thread_pool.hpp"
#include "core/thread_budget.hpp"

namespace laca {

std::vector<std::vector<NodeId>> BatchCluster(
    const Graph& graph, const Tnam* tnam, std::span<const BatchQuery> queries,
    const BatchClusterOptions& opts) {
  std::vector<std::vector<NodeId>> results(queries.size());
  if (queries.empty()) return results;

  // More across-seed workers than queries just idle (and waste a Laca
  // construction each); the surplus threads instead become intra-query
  // helpers. The split clamps the combined fleet — workers plus helpers —
  // to the num_threads budget even under an intra_query_threads override.
  // The schedulers below are correct for any worker count in
  // [1, queries.size()].
  const TwoLevelBudget budget = SplitThreadBudget(
      queries.size(), opts.num_threads, opts.intra_query_threads);
  const size_t workers = budget.workers;

  // One worker body shared by every scheduling shape: a persistent Laca
  // (warm workspace across all the queries this worker claims) plus an
  // optional private helper pool for sharding big non-greedy rounds. The
  // helper pool is per-worker and lives for the whole batch, so queries pay
  // no thread spawn cost.
  auto answer = [&](Laca& laca, size_t i) {
    results[i] = laca.Cluster(queries[i].seed, queries[i].size, opts.laca);
  };
  auto make_worker = [&](size_t w, auto claim) {
    return [&, w, claim] {
      Laca laca(graph, tnam);
      std::optional<ThreadPool> helper;
      const size_t threads = budget.per_worker[w];
      if (threads > 1) {
        helper.emplace(threads - 1);
        laca.SetIntraQueryPool(&*helper);
      }
      claim(laca);
    };
  };

  if (workers == 1) {
    // No across-seed pool: one worker answers everything in order (still
    // with its intra-query helpers when the budget allows).
    make_worker(0, [&](Laca& laca) {
      for (size_t i = 0; i < queries.size(); ++i) answer(laca, i);
    })();
    return results;
  }

  // Declared before the pool and group so that ANY exit — including an
  // exception unwinding past group's waiting destructor — destroys the
  // counter only after every worker that can touch it has finished.
  std::atomic<size_t> next{0};
  ThreadPool pool(workers);
  TaskGroup group(pool);
  if (opts.schedule == BatchSchedule::kStaticChunk) {
    // One contiguous chunk per worker. Kept for comparison benchmarks
    // (bench_ext_parallel_scaling): skewed per-seed costs serialize on the
    // slowest chunk.
    const size_t chunk = (queries.size() + workers - 1) / workers;
    for (size_t w = 0; w < workers; ++w) {
      const size_t lo = w * chunk;
      const size_t hi = std::min(lo + chunk, queries.size());
      if (lo >= hi) break;
      group.Submit(make_worker(w, [&, lo, hi](Laca& laca) {
        for (size_t i = lo; i < hi; ++i) answer(laca, i);
      }));
    }
  } else {
    // Dynamic scheduling: every worker pulls the next query off the shared
    // atomic counter, so skewed seed costs rebalance instead of serializing
    // on the slowest chunk.
    for (size_t w = 0; w < workers; ++w) {
      group.Submit(make_worker(w, [&](Laca& laca) {
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < queries.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          answer(laca, i);
        }
      }));
    }
  }
  group.Wait();  // per-batch: rethrows this batch's first error only
  return results;
}

}  // namespace laca
