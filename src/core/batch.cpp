#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/thread_pool.hpp"

namespace laca {

std::vector<std::vector<NodeId>> BatchCluster(
    const Graph& graph, const Tnam* tnam, std::span<const BatchQuery> queries,
    const BatchClusterOptions& opts) {
  std::vector<std::vector<NodeId>> results(queries.size());
  if (queries.empty()) return results;

  size_t workers = opts.num_threads;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // More workers than queries just idle (and waste a Laca construction
  // each); fewer than one cannot make progress. The schedulers below are
  // correct for any worker count in [1, queries.size()].
  workers = std::min(std::max<size_t>(workers, 1), queries.size());

  if (workers == 1) {
    // No pool: one persistent Laca answers everything in order.
    Laca laca(graph, tnam);
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = laca.Cluster(queries[i].seed, queries[i].size, opts.laca);
    }
    return results;
  }

  ThreadPool pool(workers);
  if (opts.schedule == BatchSchedule::kStaticChunk) {
    // One contiguous chunk per worker. Kept for comparison benchmarks
    // (bench_ext_parallel_scaling): skewed per-seed costs serialize on the
    // slowest chunk.
    const size_t chunk = (queries.size() + workers - 1) / workers;
    for (size_t lo = 0; lo < queries.size(); lo += chunk) {
      const size_t hi = std::min(lo + chunk, queries.size());
      pool.Submit([&, lo, hi] {
        Laca laca(graph, tnam);
        for (size_t i = lo; i < hi; ++i) {
          results[i] =
              laca.Cluster(queries[i].seed, queries[i].size, opts.laca);
        }
      });
    }
  } else {
    // Dynamic scheduling: every worker owns one persistent Laca (and thus
    // one diffusion workspace, warm across all the queries it claims) and
    // pulls the next query off a shared atomic counter, so skewed seed
    // costs rebalance instead of serializing on the slowest chunk.
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < workers; ++w) {
      pool.Submit([&] {
        Laca laca(graph, tnam);
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < queries.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          results[i] =
              laca.Cluster(queries[i].seed, queries[i].size, opts.laca);
        }
      });
    }
    pool.Wait();  // `next` must outlive the workers
    return results;
  }
  pool.Wait();
  return results;
}

}  // namespace laca
