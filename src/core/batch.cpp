#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "common/thread_pool.hpp"

namespace laca {
namespace {

// Per-worker intra-query thread budget (including the worker itself) under
// two-level scheduling: the across-seed fan-out uses `workers` threads of the
// `total` budget, and the surplus is spread across workers (first `extra`
// workers get one more). Many-queries batches get budget 1 everywhere (pure
// across-seed parallelism); a single big-graph query gets the whole budget.
size_t IntraQueryBudget(size_t worker, size_t workers, size_t total,
                        const BatchClusterOptions& opts) {
  if (opts.intra_query_threads > 0) return opts.intra_query_threads;
  const size_t base = total / workers;
  const size_t extra = total % workers;
  return base + (worker < extra ? 1 : 0);
}

}  // namespace

std::vector<std::vector<NodeId>> BatchCluster(
    const Graph& graph, const Tnam* tnam, std::span<const BatchQuery> queries,
    const BatchClusterOptions& opts) {
  std::vector<std::vector<NodeId>> results(queries.size());
  if (queries.empty()) return results;

  size_t total = opts.num_threads;
  if (total == 0) {
    total = std::max(1u, std::thread::hardware_concurrency());
  }
  total = std::max<size_t>(total, 1);
  // More across-seed workers than queries just idle (and waste a Laca
  // construction each); the surplus threads instead become intra-query
  // helpers. The schedulers below are correct for any worker count in
  // [1, queries.size()].
  const size_t workers = std::min(total, queries.size());

  // One worker body shared by every scheduling shape: a persistent Laca
  // (warm workspace across all the queries this worker claims) plus an
  // optional private helper pool for sharding big non-greedy rounds. The
  // helper pool is per-worker and lives for the whole batch, so queries pay
  // no thread spawn cost.
  auto answer = [&](Laca& laca, size_t i) {
    results[i] = laca.Cluster(queries[i].seed, queries[i].size, opts.laca);
  };
  auto make_worker = [&](size_t w, auto claim) {
    return [&, w, claim] {
      Laca laca(graph, tnam);
      std::optional<ThreadPool> helper;
      const size_t budget = IntraQueryBudget(w, workers, total, opts);
      if (budget > 1) {
        helper.emplace(budget - 1);
        laca.SetIntraQueryPool(&*helper);
      }
      claim(laca);
    };
  };

  if (workers == 1) {
    // No across-seed pool: one worker answers everything in order (still
    // with its intra-query helpers when the budget allows).
    make_worker(0, [&](Laca& laca) {
      for (size_t i = 0; i < queries.size(); ++i) answer(laca, i);
    })();
    return results;
  }

  // Declared before the pool and group so that ANY exit — including an
  // exception unwinding past group's waiting destructor — destroys the
  // counter only after every worker that can touch it has finished.
  std::atomic<size_t> next{0};
  ThreadPool pool(workers);
  TaskGroup group(pool);
  if (opts.schedule == BatchSchedule::kStaticChunk) {
    // One contiguous chunk per worker. Kept for comparison benchmarks
    // (bench_ext_parallel_scaling): skewed per-seed costs serialize on the
    // slowest chunk.
    const size_t chunk = (queries.size() + workers - 1) / workers;
    for (size_t w = 0; w < workers; ++w) {
      const size_t lo = w * chunk;
      const size_t hi = std::min(lo + chunk, queries.size());
      if (lo >= hi) break;
      group.Submit(make_worker(w, [&, lo, hi](Laca& laca) {
        for (size_t i = lo; i < hi; ++i) answer(laca, i);
      }));
    }
  } else {
    // Dynamic scheduling: every worker pulls the next query off the shared
    // atomic counter, so skewed seed costs rebalance instead of serializing
    // on the slowest chunk.
    for (size_t w = 0; w < workers; ++w) {
      group.Submit(make_worker(w, [&](Laca& laca) {
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < queries.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          answer(laca, i);
        }
      }));
    }
  }
  group.Wait();  // per-batch: rethrows this batch's first error only
  return results;
}

}  // namespace laca
