#include "core/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "attr/tnam.hpp"
#include "common/error.hpp"
#include "diffusion/exact.hpp"

namespace laca {

std::vector<double> ExactPhi(const Graph& graph, const SnasProvider& snas,
                             NodeId seed, double alpha, double tol) {
  const NodeId n = graph.num_nodes();
  std::vector<double> pi = ExactRwr(graph, seed, alpha, tol);
  std::vector<double> phi(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    double acc = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (pi[j] == 0.0) continue;
      acc += pi[j] * snas.Snas(j, i);
    }
    phi[i] = acc * graph.Degree(i);
  }
  return phi;
}

std::vector<double> ExactBdd(const Graph& graph, const SnasProvider& snas,
                             NodeId seed, double alpha, double tol) {
  std::vector<double> phi = ExactPhi(graph, snas, seed, alpha, tol);
  // Eq. 8: rho_t = (1/d(t)) sum_i phi_i pi(i, t) — one more exact diffusion.
  std::vector<double> rho =
      ExactDiffuse(graph, SparseVector::FromDense(phi), alpha, tol);
  for (NodeId t = 0; t < graph.num_nodes(); ++t) rho[t] /= graph.Degree(t);
  return rho;
}

namespace {

// 2-step truncated edge-level RWR score pi(a,b) for adjacent (a,b):
//   (1-alpha) * (alpha / d(a)) * (1 + alpha * S_ab),
// where S_ab = sum over common neighbors l of 1/d(l) (dropped when the
// 1-step kernel is requested). Unweighted graphs only.
double EdgeRwr(const Graph& g, NodeId a, NodeId b, double alpha,
               bool two_step) {
  double base = (1.0 - alpha) * alpha / g.Degree(a);
  if (!two_step) return base;
  double s_ab = 0.0;
  auto na = g.Neighbors(a);
  auto nb = g.Neighbors(b);
  size_t p = 0, q = 0;
  while (p < na.size() && q < nb.size()) {
    if (na[p] < nb[q]) {
      ++p;
    } else if (na[p] > nb[q]) {
      ++q;
    } else {
      s_ab += 1.0 / g.Degree(na[p]);
      ++p;
      ++q;
    }
  }
  return base * (1.0 + alpha * s_ab);
}

// Applies an RS leg: out_b += sum_a in_a * RS(a, b), where the kernel is the
// edge-restricted pi_hat(a,b) * s(a,b) plus the identity diagonal. When
// `from_second_arg` is set the kernel is evaluated as RS(b, a) — used by the
// third leg, whose kernel is indexed by the *output* node (Z(t, j)).
// `tnam` (null when the provider has no low-rank form) serves the per-edge
// SNAS values through the batched kernel instead of a virtual call per edge;
// `snas_scratch` is its per-neighborhood output buffer.
SparseVector ApplyRsLeg(const Graph& g, const SnasProvider& snas,
                        const Tnam* tnam, const SparseVector& in, double alpha,
                        bool two_step, bool from_second_arg,
                        std::vector<double>* snas_scratch) {
  SparseVector out;
  for (const auto& e : in.entries()) {
    out.Add(e.index, e.value);  // diagonal: RS(a, a) = 1
    auto nbrs = g.Neighbors(e.index);
    const double* batched = nullptr;
    if (tnam != nullptr) {
      snas_scratch->resize(nbrs.size());
      tnam->SnasBatch(e.index, nbrs,
                      std::span<double>(snas_scratch->data(), nbrs.size()));
      batched = snas_scratch->data();
    }
    for (size_t t = 0; t < nbrs.size(); ++t) {
      const NodeId b = nbrs[t];
      double pi_hat = from_second_arg ? EdgeRwr(g, b, e.index, alpha, two_step)
                                      : EdgeRwr(g, e.index, b, alpha, two_step);
      // Low-rank SNAS estimates can dip below zero; clamp so downstream
      // diffusion legs receive a non-negative vector.
      double s = std::max(batched != nullptr ? batched[t]
                                             : snas.Snas(e.index, b),
                          0.0);
      out.Add(b, e.value * pi_hat * s);
    }
  }
  out.Compact();
  return out;
}

}  // namespace

SparseVector AlternativeBdd(const Graph& graph, const SnasProvider& snas,
                            NodeId seed, const AltBddOptions& opts,
                            DiffusionWorkspace* workspace) {
  LACA_CHECK(!graph.is_weighted(),
             "AlternativeBdd supports unweighted graphs only");
  LACA_CHECK(seed < graph.num_nodes(), "seed out of range");
  DiffusionWorkspace local_ws;  // unused when a persistent one is borrowed
  DiffusionEngine engine(graph, workspace != nullptr ? workspace : &local_ws);
  const double alpha = opts.diffusion.alpha;
  // Batched fast path only when the Tnam covers every graph node (same
  // guard as Laca::ComputeBddWithProvider); otherwise keep the virtual path.
  const Tnam* tnam = dynamic_cast<const Tnam*>(&snas);
  if (tnam != nullptr && tnam->num_rows() != graph.num_nodes()) tnam = nullptr;
  std::vector<double> snas_scratch;

  // Leg 1: X(s, .) applied to the unit seed vector.
  SparseVector cur;
  if (opts.legs[0] == BddLeg::kRwr) {
    cur = engine.Adaptive(SparseVector::Unit(seed), opts.diffusion);
  } else {
    cur = ApplyRsLeg(graph, snas, tnam, SparseVector::Unit(seed), alpha,
                     opts.two_step_edge_kernel, /*from_second_arg=*/false,
                     &snas_scratch);
  }

  // Leg 2: v_j = sum_i cur_i Y(i, j). For R this is exactly an RWR diffusion.
  if (opts.legs[1] == BddLeg::kRwr) {
    DiffusionOptions d = opts.diffusion;
    d.epsilon *= std::max(cur.L1Norm(), 1e-300);  // scale-invariant threshold
    cur = engine.Adaptive(cur, d);
  } else {
    cur = ApplyRsLeg(graph, snas, tnam, cur, alpha, opts.two_step_edge_kernel,
                     /*from_second_arg=*/false, &snas_scratch);
  }

  // Leg 3: out_t = sum_j v_j Z(t, j).
  if (opts.legs[2] == BddLeg::kRwr) {
    // sum_j v_j pi(t, j) = (1/d(t)) sum_j (v_j d(j)) pi(j, t): the same
    // degree-symmetry trick LACA's Step 3 uses (Eq. 8).
    SparseVector scaled;
    for (const auto& e : cur.entries()) {
      scaled.Add(e.index, e.value * graph.Degree(e.index));
    }
    DiffusionOptions d = opts.diffusion;
    d.epsilon *= std::max(scaled.L1Norm(), 1e-300);
    SparseVector diffused = engine.Adaptive(scaled, d);
    SparseVector out;
    for (const auto& e : diffused.entries()) {
      out.Add(e.index, e.value / graph.Degree(e.index));
    }
    return out;
  }
  return ApplyRsLeg(graph, snas, tnam, cur, alpha, opts.two_step_edge_kernel,
                    /*from_second_arg=*/true, &snas_scratch);
}

std::vector<double> ExactAlternativeBdd(const Graph& graph,
                                        const SnasProvider& snas, NodeId seed,
                                        const AltBddOptions& opts, double tol) {
  LACA_CHECK(!graph.is_weighted(),
             "ExactAlternativeBdd supports unweighted graphs only");
  const NodeId n = graph.num_nodes();
  const double alpha = opts.diffusion.alpha;
  // Full RWR matrix, one exact diffusion per row (tiny graphs only).
  std::vector<std::vector<double>> pi(n);
  for (NodeId v = 0; v < n; ++v) pi[v] = ExactRwr(graph, v, alpha, tol);

  auto kernel = [&](BddLeg leg, NodeId a, NodeId b) -> double {
    if (leg == BddLeg::kRwr) return pi[a][b];
    if (a == b) return 1.0;
    if (!graph.HasEdge(a, b)) return 0.0;
    return EdgeRwr(graph, a, b, alpha, opts.two_step_edge_kernel) *
           snas.Snas(a, b);
  };

  std::vector<double> leg1(n), mid(n, 0.0), out(n, 0.0);
  for (NodeId i = 0; i < n; ++i) leg1[i] = kernel(opts.legs[0], seed, i);
  for (NodeId i = 0; i < n; ++i) {
    if (leg1[i] == 0.0) continue;
    for (NodeId j = 0; j < n; ++j) mid[j] += leg1[i] * kernel(opts.legs[1], i, j);
  }
  for (NodeId t = 0; t < n; ++t) {
    double acc = 0.0;
    for (NodeId j = 0; j < n; ++j) {
      if (mid[j] == 0.0) continue;
      acc += mid[j] * kernel(opts.legs[2], t, j);
    }
    out[t] = acc;
  }
  return out;
}

}  // namespace laca
