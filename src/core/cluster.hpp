// Cluster extraction from score vectors: top-K selection and sweep cuts.
#ifndef LACA_CORE_CLUSTER_HPP_
#define LACA_CORE_CLUSTER_HPP_

#include <vector>

#include "common/sparse_vector.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Extracts the `size` highest-scoring nodes (seed always included, ties by
/// node id). This is the paper's evaluation protocol: |C_s| = |Y_s| (Section
/// VI-B1). Returns fewer nodes if the score support is smaller than `size`.
std::vector<NodeId> TopKCluster(const SparseVector& scores, NodeId seed,
                                size_t size);

/// Pads `cluster` to `size` nodes with a BFS from the seed over nodes not
/// yet in the cluster (used when a method's support is too small, so every
/// method returns exactly |Y_s| nodes and precisions are comparable).
std::vector<NodeId> PadWithBfs(const Graph& graph, std::vector<NodeId> cluster,
                               size_t size, NodeId seed);

/// Result of a conductance sweep.
struct SweepResult {
  std::vector<NodeId> cluster;
  double conductance = 1.0;
};

/// Classic sweep cut: orders nodes by score (descending), scans prefixes, and
/// returns the prefix minimizing conductance. `max_size` of 0 means no cap;
/// prefixes with volume beyond half the graph are not considered.
SweepResult SweepCut(const Graph& graph, const SparseVector& scores,
                     size_t max_size = 0);

}  // namespace laca

#endif  // LACA_CORE_CLUSTER_HPP_
