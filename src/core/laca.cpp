#include "core/laca.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/cluster.hpp"

namespace laca {

Laca::Laca(const Graph& graph, const Tnam* tnam)
    : graph_(graph), tnam_(tnam), engine_(graph) {
  if (tnam_ != nullptr) {
    LACA_CHECK(tnam_->num_rows() == graph.num_nodes(),
               "TNAM row count must match graph node count");
    psi_.resize(tnam_->dim());
  }
}

Laca::Laca(const Graph& graph, const Tnam* tnam, DiffusionWorkspace* workspace)
    : graph_(graph), tnam_(tnam), engine_(graph, workspace) {
  if (tnam_ != nullptr) {
    LACA_CHECK(tnam_->num_rows() == graph.num_nodes(),
               "TNAM row count must match graph node count");
    psi_.resize(tnam_->dim());
  }
}

LacaResult Laca::ComputeBdd(NodeId seed, const LacaOptions& opts) {
  return ComputeBdd(seed, opts, nullptr);
}

LacaResult Laca::ComputeBdd(NodeId seed, const LacaOptions& opts,
                            SparseVector* rwr_out) {
  LACA_CHECK(seed < graph_.num_nodes(), "seed out of range");
  LacaResult result;

  // Step 1: estimate the RWR vector pi' by diffusing the unit vector 1^(s).
  DiffusionOptions dopts = opts.ToDiffusionOptions();
  SparseVector pi = opts.use_adaptive
                        ? engine_.Adaptive(SparseVector::Unit(seed), dopts,
                                           &result.rwr_stats)
                        : engine_.Greedy(SparseVector::Unit(seed), dopts,
                                         &result.rwr_stats);
  result.rwr_support = pi.Size();

  FinishBddFromRwr(pi, opts, &result);
  // Extract pi' only after Steps 2-3 consumed it, preserving its exact
  // entry order: replaying it through ComputeBddFromRwr reproduces this
  // result bit for bit (the diffusion-tier cache contract).
  if (rwr_out != nullptr) *rwr_out = std::move(pi);
  return result;
}

LacaResult Laca::ComputeBddFromRwr(NodeId seed, const SparseVector& rwr,
                                   const LacaOptions& opts) {
  LACA_CHECK(seed < graph_.num_nodes(), "seed out of range");
  LacaResult result;
  result.rwr_support = rwr.Size();
  FinishBddFromRwr(rwr, opts, &result);
  return result;
}

void Laca::FinishBddFromRwr(const SparseVector& pi, const LacaOptions& opts,
                            LacaResult* result) {
  // Step 2: aggregate TNAM rows into psi (Eq. 12), then build the RWR-SNAS
  // vector phi'_i = (psi . z(i)) d(i) over supp(pi') (Eq. 13) — the fused
  // two-pass kernel over contiguous TNAM storage. Without a TNAM the SNAS
  // is the identity and phi'_i = pi'_i d(i).
  SparseVector phi;
  if (tnam_ != nullptr) {
    phi = FusedSnasStep(*tnam_, pi, opts.cancel);
  } else {
    for (const auto& e : pi.entries()) {
      phi.Add(e.index, e.value * graph_.Degree(e.index));
    }
  }
  result->phi_l1 = phi.L1Norm();
  if (phi.Empty()) {
    // Degenerate attributes (e.g. all-zero rows near the seed): fall back to
    // the topology-only BDD so a cluster is still produced.
    for (const auto& e : pi.entries()) {
      phi.Add(e.index, e.value * graph_.Degree(e.index));
    }
    result->phi_l1 = phi.L1Norm();
  }
  if (phi.Empty()) {
    // pi' itself is empty: with a huge eps the all-zero vector already
    // satisfies Eq. 14 (pi(t) <= eps d(t) everywhere), so the approximate
    // BDD is legitimately zero. Cluster() pads from the seed by BFS.
    return;
  }

  // Step 3: diffuse phi' with threshold eps * ||phi'||_1 (Line 5), then
  // normalize each entry by its degree (Line 6).
  DiffusionOptions bdd_opts = opts.ToDiffusionOptions();
  bdd_opts.epsilon = opts.epsilon * result->phi_l1;
  SparseVector rho = opts.use_adaptive
                         ? engine_.Adaptive(phi, bdd_opts, &result->bdd_stats)
                         : engine_.Greedy(phi, bdd_opts, &result->bdd_stats);
  for (auto& e : rho.mutable_entries()) {
    e.value /= graph_.Degree(e.index);
  }
  result->bdd = std::move(rho);
}

SparseVector Laca::FusedSnasStep(const Tnam& tnam, const SparseVector& pi,
                                 const CancelToken* cancel) {
  const size_t dim = tnam.dim();
  psi_.assign(dim, 0.0);
  tnam.AccumulateRows(pi.entries(), psi_);
  dots_.resize(pi.Size());
  tnam.DotRows(pi.entries(), psi_,
               std::span<double>(dots_.data(), pi.Size()));
  SparseVector phi;
  for (size_t t = 0; t < pi.Size(); ++t) {
    // Step-2 poll: keeps Algo. 4's deadline granularity when the sweep over
    // supp(pi') dwarfs a diffusion round (large supports, big k).
    if (cancel != nullptr && (t & 4095) == 4095) cancel->ThrowIfExpired();
    const double dot = dots_[t];
    // The low-rank SNAS can dip below zero; the diffusion requires a
    // non-negative input, so clamp (documented in DESIGN.md).
    if (dot > 0.0) {
      const NodeId i = pi.entries()[t].index;
      phi.Add(i, dot * graph_.Degree(i));
    }
  }
  return phi;
}

LacaResult Laca::ComputeBddWithProvider(NodeId seed, const SnasProvider& snas,
                                        const LacaOptions& opts) {
  LACA_CHECK(seed < graph_.num_nodes(), "seed out of range");
  LacaResult result;
  DiffusionOptions dopts = opts.ToDiffusionOptions();
  SparseVector pi = opts.use_adaptive
                        ? engine_.Adaptive(SparseVector::Unit(seed), dopts,
                                           &result.rwr_stats)
                        : engine_.Greedy(SparseVector::Unit(seed), dopts,
                                         &result.rwr_stats);
  result.rwr_support = pi.Size();

  // A Tnam provider admits the same fused O(|supp| k) Step 2 as ComputeBdd;
  // only truly unfactorized providers pay the quadratic double loop.
  const Tnam* tnam = dynamic_cast<const Tnam*>(&snas);
  SparseVector phi;
  if (tnam != nullptr && tnam->num_rows() == graph_.num_nodes()) {
    phi = FusedSnasStep(*tnam, pi, opts.cancel);
  } else {
    for (const auto& ei : pi.entries()) {
      // The quadratic fallback does O(|supp|) work per outer entry, so the
      // outer loop alone gives a fine-enough poll interval.
      if (opts.cancel != nullptr) opts.cancel->ThrowIfExpired();
      double acc = 0.0;
      for (const auto& ej : pi.entries()) {
        acc += ej.value * snas.Snas(ej.index, ei.index);
      }
      if (acc > 0.0) phi.Add(ei.index, acc * graph_.Degree(ei.index));
    }
  }
  result.phi_l1 = phi.L1Norm();
  if (phi.Empty()) {
    for (const auto& e : pi.entries()) {
      phi.Add(e.index, e.value * graph_.Degree(e.index));
    }
    result.phi_l1 = phi.L1Norm();
  }
  if (phi.Empty()) {
    return result;  // empty pi': the zero vector satisfies Eq. 14 (see above)
  }

  DiffusionOptions bdd_opts = dopts;
  bdd_opts.epsilon = opts.epsilon * result.phi_l1;
  SparseVector rho = opts.use_adaptive
                         ? engine_.Adaptive(phi, bdd_opts, &result.bdd_stats)
                         : engine_.Greedy(phi, bdd_opts, &result.bdd_stats);
  for (auto& e : rho.mutable_entries()) {
    e.value /= graph_.Degree(e.index);
  }
  result.bdd = std::move(rho);
  return result;
}

std::vector<NodeId> Laca::Cluster(NodeId seed, size_t size,
                                  const LacaOptions& opts) {
  return Cluster(seed, size, opts, nullptr);
}

std::vector<NodeId> Laca::Cluster(NodeId seed, size_t size,
                                  const LacaOptions& opts,
                                  SparseVector* rwr_out) {
  LacaResult r = ComputeBdd(seed, opts, rwr_out);
  std::vector<NodeId> cluster = TopKCluster(r.bdd, seed, size);
  if (cluster.size() < size) {
    cluster = PadWithBfs(graph_, std::move(cluster), size, seed);
  }
  return cluster;
}

std::vector<NodeId> Laca::ClusterFromRwr(NodeId seed, size_t size,
                                         const SparseVector& rwr,
                                         const LacaOptions& opts) {
  LacaResult r = ComputeBddFromRwr(seed, rwr, opts);
  std::vector<NodeId> cluster = TopKCluster(r.bdd, seed, size);
  if (cluster.size() < size) {
    cluster = PadWithBfs(graph_, std::move(cluster), size, seed);
  }
  return cluster;
}

}  // namespace laca
