#include "core/cluster.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/error.hpp"

namespace laca {

std::vector<NodeId> TopKCluster(const SparseVector& scores, NodeId seed,
                                size_t size) {
  LACA_CHECK(size >= 1, "cluster size must be >= 1");
  SparseVector sorted = scores;
  sorted.SortByValueDesc();
  std::vector<NodeId> cluster;
  cluster.reserve(size);
  cluster.push_back(seed);
  for (const auto& e : sorted.entries()) {
    if (cluster.size() >= size) break;
    if (e.index == seed) continue;
    cluster.push_back(e.index);
  }
  return cluster;
}

std::vector<NodeId> PadWithBfs(const Graph& graph, std::vector<NodeId> cluster,
                               size_t size, NodeId seed) {
  if (cluster.size() >= size) return cluster;
  std::unordered_set<NodeId> in(cluster.begin(), cluster.end());
  std::deque<NodeId> queue;
  // Start the BFS frontier from the existing cluster (seed first).
  queue.push_back(seed);
  for (NodeId v : cluster) {
    if (v != seed) queue.push_back(v);
  }
  std::unordered_set<NodeId> visited(cluster.begin(), cluster.end());
  visited.insert(seed);
  while (!queue.empty() && cluster.size() < size) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.Neighbors(u)) {
      if (visited.insert(v).second) {
        queue.push_back(v);
        if (in.insert(v).second) {
          cluster.push_back(v);
          if (cluster.size() >= size) break;
        }
      }
    }
  }
  return cluster;
}

SweepResult SweepCut(const Graph& graph, const SparseVector& scores,
                     size_t max_size) {
  SparseVector sorted = scores;
  sorted.SortByValueDesc();
  const double total_volume = graph.TotalVolume();

  std::unordered_set<NodeId> in_set;
  double volume = 0.0, cut = 0.0;
  SweepResult best;
  best.conductance = 2.0;  // above any real conductance
  size_t best_prefix = 0;

  size_t limit = sorted.Size();
  if (max_size > 0) limit = std::min(limit, max_size);
  std::vector<NodeId> prefix;
  prefix.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    NodeId u = sorted.entries()[i].index;
    double internal = 0.0;
    auto nbrs = graph.Neighbors(u);
    auto wts = graph.NeighborWeights(u);
    for (size_t e = 0; e < nbrs.size(); ++e) {
      if (in_set.count(nbrs[e])) {
        internal += graph.is_weighted() ? wts[e] : 1.0;
      }
    }
    in_set.insert(u);
    prefix.push_back(u);
    volume += graph.Degree(u);
    cut += graph.Degree(u) - 2.0 * internal;
    double denom = std::min(volume, total_volume - volume);
    if (denom <= 0.0) break;  // prefix swallowed more than half the graph
    double phi = cut / denom;
    if (phi < best.conductance) {
      best.conductance = phi;
      best_prefix = i + 1;
    }
  }
  best.cluster.assign(prefix.begin(), prefix.begin() + best_prefix);
  if (best_prefix == 0) best.conductance = 1.0;  // nothing sweepable
  return best;
}

}  // namespace laca
