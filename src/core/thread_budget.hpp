// Two-level thread-budget splitting, shared by BatchCluster and the
// ServingEngine.
//
// Both systems run a fleet of across-request workers (one warm Laca each)
// and optionally give every worker an intra-query helper pool that shards
// big non-greedy diffusion rounds (DESIGN.md §2b/§2c). The invariant this
// helper enforces is that the COMBINED fleet — workers plus all their
// helpers — never exceeds the caller's total thread budget. The previous
// BatchCluster logic returned the intra_query_threads override
// unconditionally, so a 16-worker batch with intra_query_threads=4 ran 64
// threads on an 8-core budget; the override is now a per-worker ceiling,
// clamped to the worker's fair share of the total.
#ifndef LACA_CORE_THREAD_BUDGET_HPP_
#define LACA_CORE_THREAD_BUDGET_HPP_

#include <cstddef>
#include <vector>

namespace laca {

/// How a total thread budget splits into across-request workers and
/// per-worker intra-query budgets.
struct TwoLevelBudget {
  /// Number of across-request workers (>= 1, <= total budget).
  size_t workers = 1;
  /// Per-worker thread budget INCLUDING the worker itself (so 1 = serial
  /// queries, k = the worker plus k-1 helpers). Size == workers, every entry
  /// >= 1, and the sum never exceeds the total budget.
  std::vector<size_t> per_worker;
};

/// Splits `total_threads` into at most `max_workers` across-request workers
/// plus per-worker intra-query budgets.
///
///   * total_threads == 0 uses the hardware concurrency (at least 1).
///   * max_workers == 0 means "no cap" (as many workers as the budget).
///   * intra_override == 0 distributes the surplus automatically: workers =
///     min(max_workers, total), each worker gets total/workers threads and
///     the first total%workers workers one more.
///   * intra_override >= 1 is a CEILING on each worker's budget: per-worker
///     budget = min(override, fair share), never below 1. In particular 1
///     forces serial queries, and an override larger than the fair share is
///     clamped so workers x override can never exceed the total budget.
TwoLevelBudget SplitThreadBudget(size_t max_workers, size_t total_threads,
                                 size_t intra_override);

}  // namespace laca

#endif  // LACA_CORE_THREAD_BUDGET_HPP_
