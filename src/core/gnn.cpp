#include "core/gnn.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace laca {
namespace {

// Propagation work (n * k elements) below this stays serial.
constexpr size_t kParallelSmoothMin = 1u << 15;

/// One transition step: out = P * in, i.e. out(u) = mean over u's neighbors
/// (weight-proportional on weighted graphs) of in(v). Output rows are
/// disjoint and each row's accumulation walks the neighbor list in order,
/// so the row-block fan-out is bit-identical to the serial loop.
void PropagateOnce(const Graph& graph, const DenseMatrix& in,
                   DenseMatrix* out, ThreadPool* pool) {
  const size_t k = in.cols();
  ForEachBlock(pool, graph.num_nodes(), DenseRowBlock(k),
               [&](size_t, size_t lo, size_t hi) {
    for (NodeId u = static_cast<NodeId>(lo); u < hi; ++u) {
      double* row = out->Row(u).data();
      for (size_t c = 0; c < k; ++c) row[c] = 0.0;
      auto nbrs = graph.Neighbors(u);
      auto wts = graph.NeighborWeights(u);
      const double du = graph.Degree(u);
      if (du == 0.0) continue;  // isolated node keeps a zero embedding
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const double w = (graph.is_weighted() ? wts[i] : 1.0) / du;
        const double* src = in.Row(nbrs[i]).data();
        for (size_t c = 0; c < k; ++c) row[c] += w * src[c];
      }
    }
  });
}

}  // namespace

DenseMatrix SmoothEmbeddings(const Graph& graph, const DenseMatrix& h0,
                             const GnnSmoothingOptions& opts) {
  LACA_CHECK(h0.rows() == graph.num_nodes(),
             "H0 must have one row per node");
  LACA_CHECK(h0.cols() > 0, "H0 must have at least one column");
  LACA_CHECK(opts.alpha > 0.0 && opts.alpha < 1.0, "alpha must be in (0, 1)");
  LACA_CHECK(opts.tolerance > 0.0 && opts.tolerance < 1.0,
             "tolerance must be in (0, 1)");
  LACA_CHECK(opts.max_hops >= 1, "max_hops must be >= 1");

  // Propagate until the dropped tail sum_{l > L} (1-a) a^l = a^(L+1) is
  // below tolerance.
  const int hops = std::min<int>(
      opts.max_hops,
      static_cast<int>(
          std::ceil(std::log(opts.tolerance) / std::log(opts.alpha))));

  const size_t n = h0.rows(), k = h0.cols();
  ThreadPool* pool =
      GateBySize(SharedPoolOrSerial(), n * k, kParallelSmoothMin);
  DenseMatrix acc(n, k);
  DenseMatrix cur = h0;
  DenseMatrix next(n, k);
  double coeff = 1.0 - opts.alpha;  // (1-a) a^l, starting at l = 0
  for (int l = 0;; ++l) {
    ForEachBlock(pool, n * k, 1u << 14, [&](size_t, size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) acc.data()[i] += coeff * cur.data()[i];
    });
    if (l >= hops) break;
    PropagateOnce(graph, cur, &next, pool);
    std::swap(cur, next);
    coeff *= opts.alpha;
  }
  return acc;
}

std::vector<double> BddViaEmbeddings(const Graph& graph, const Tnam& tnam,
                                     NodeId seed,
                                     const GnnSmoothingOptions& opts) {
  LACA_CHECK(seed < graph.num_nodes(), "seed node out of range");
  LACA_CHECK(tnam.num_rows() == graph.num_nodes(),
             "TNAM must cover all graph nodes");
  DenseMatrix h = SmoothEmbeddings(graph, tnam.z(), opts);
  std::vector<double> rho(graph.num_nodes());
  for (NodeId t = 0; t < graph.num_nodes(); ++t) {
    rho[t] = h.RowDot(seed, t);
  }
  return rho;
}

GnnBddScorer::GnnBddScorer(const Graph& graph, const Tnam& tnam,
                           const GnnSmoothingOptions& opts) {
  LACA_CHECK(tnam.num_rows() == graph.num_nodes(),
             "TNAM must cover all graph nodes");
  h_ = SmoothEmbeddings(graph, tnam.z(), opts);
}

std::vector<double> GnnBddScorer::Score(NodeId seed) const {
  LACA_CHECK(seed < h_.rows(), "seed node out of range");
  std::vector<double> rho(h_.rows());
  for (size_t t = 0; t < h_.rows(); ++t) {
    rho[t] = h_.RowDot(seed, t);
  }
  return rho;
}

}  // namespace laca
