// Bidirectional diffusion distribution (BDD, Section II-C) — exact reference
// and the alternative formulations of Appendix C.
#ifndef LACA_CORE_BDD_HPP_
#define LACA_CORE_BDD_HPP_

#include <array>
#include <vector>

#include "attr/snas.hpp"
#include "common/sparse_vector.hpp"
#include "diffusion/diffusion.hpp"
#include "graph/graph.hpp"

namespace laca {

/// Exact BDD vector rho for a seed (Eq. 5):
///   rho_t = sum_{i,j} pi(s,i) s(i,j) pi(t,j).
/// O(n^2) SNAS evaluations plus one exact diffusion — reference for tests on
/// small graphs (verifies Theorem V.4 and the LACA pipeline end to end).
std::vector<double> ExactBdd(const Graph& graph, const SnasProvider& snas,
                             NodeId seed, double alpha, double tol = 1e-12);

/// Exact RWR-SNAS vector phi (Eq. 9): phi_i = sum_j pi(s,j) s(j,i) d(i).
std::vector<double> ExactPhi(const Graph& graph, const SnasProvider& snas,
                             NodeId seed, double alpha, double tol = 1e-12);

// ---------------------------------------------------------------------------
// Alternative BDD formulations (Appendix C, Table X).
//
// Each of the three "legs" of the affinity
//     sum_{i,j} X(s,i) * Y(i,j) * Z(t,j)
// is either the plain RWR kernel R(a,b) = pi(a,b), or the edge-restricted
// attribute-weighted kernel
//     RS(a,b) = pi(a,b) * s(a,b)   if {a,b} in E,   1 if a == b,   0 otherwise.
// RS legs overweight attribute transitions; Table X shows every such variant
// degrades sharply versus the BDD — reproduced by bench_table10_alt_bdd.
//
// Edge-level RWR scores pi(a,b) inside RS legs are approximated by their
// 2-step truncation pi(a,b) ~= (1-alpha)(alpha P_ab + alpha^2 (P^2)_ab),
// which keeps the computation local (see DESIGN.md); R legs use the full
// diffusion machinery. Exactness is covered by tests on small graphs.
// ---------------------------------------------------------------------------

/// Which kernel each of the three legs uses.
enum class BddLeg {
  kRwr,      // "R":  pi(a, b)
  kRwrSnas,  // "RS": edge-restricted pi(a, b) * s(a, b)
};

/// Options for AlternativeBdd.
struct AltBddOptions {
  DiffusionOptions diffusion;
  std::array<BddLeg, 3> legs = {BddLeg::kRwrSnas, BddLeg::kRwrSnas,
                                BddLeg::kRwrSnas};
  /// Use the exact 2-step edge kernel (common-neighbor intersection) instead
  /// of the 1-step-only truncation.
  bool two_step_edge_kernel = true;
};

/// Computes the alternative affinity vector for `seed` under `opts`.
/// Cost is local: O(vol of the explored region) per leg. RS legs evaluate
/// the SNAS per traversed edge; a `Tnam` provider is detected and served by
/// its batched SnasBatch kernel (no virtual call per edge). When `workspace`
/// is non-null the R legs diffuse on it (rebound to `graph`) instead of a
/// transient per-call arena — pass a persistent one in batch harnesses.
SparseVector AlternativeBdd(const Graph& graph, const SnasProvider& snas,
                            NodeId seed, const AltBddOptions& opts,
                            DiffusionWorkspace* workspace = nullptr);

/// Exact (dense) alternative affinity for tiny graphs — test reference.
/// Computes full RWR rows by power iteration; O(n m) time, O(n^2) memory.
std::vector<double> ExactAlternativeBdd(const Graph& graph,
                                        const SnasProvider& snas, NodeId seed,
                                        const AltBddOptions& opts,
                                        double tol = 1e-12);

}  // namespace laca

#endif  // LACA_CORE_BDD_HPP_
