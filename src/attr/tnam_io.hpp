// Binary persistence for the TNAM.
//
// Algo. 3 runs once per dataset and its output Z is reused by the LGC task
// of every seed node (Section III-B), so a deployment saves the TNAM next to
// the graph and reloads it instead of re-running the k-SVD. Files use the
// checksummed container of common/serialize.hpp.
#ifndef LACA_ATTR_TNAM_IO_HPP_
#define LACA_ATTR_TNAM_IO_HPP_

#include <string>

#include "attr/tnam.hpp"

namespace laca {

/// Writes `tnam` to `path`. Throws std::invalid_argument on I/O failure.
void SaveTnamBinary(const Tnam& tnam, const std::string& path);

/// Reads a TNAM written by SaveTnamBinary. Throws std::invalid_argument on
/// missing, corrupt, or truncated files.
Tnam LoadTnamBinary(const std::string& path);

/// As above, additionally requiring the TNAM to cover exactly
/// `expected_rows` nodes. A TNAM whose row count disagrees with the graph it
/// is served against reads out of bounds at query time, so every load path
/// that knows its graph (snapshot directories, laca_serve --tnam) must
/// reject the mismatch here — the error names the file and both counts.
Tnam LoadTnamBinary(const std::string& path, NodeId expected_rows);

}  // namespace laca

#endif  // LACA_ATTR_TNAM_IO_HPP_
