#include "attr/snas.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/builder.hpp"

namespace laca {
namespace {

// Positive floor keeping the normalizers well-defined; SNAS is only
// meaningful when sum_l f(x_i, x_l) > 0 (guaranteed for non-negative
// attributes; clamped otherwise).
constexpr double kNormFloor = 1e-12;

std::vector<double> InvertSqrt(std::vector<double> sums) {
  for (double& s : sums) s = 1.0 / std::sqrt(std::max(s, kNormFloor));
  return sums;
}

}  // namespace

ExactCosineSnas::ExactCosineSnas(const AttributeMatrix& x) : x_(x) {
  // sum_l x_i . x_l = x_i . (sum_l x_l): one pass to build the column sums.
  std::vector<double> colsum(x.num_cols(), 0.0);
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    for (const auto& [col, val] : x.Row(i)) colsum[col] += val;
  }
  std::vector<double> sums(x.num_rows(), 0.0);
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    double s = 0.0;
    for (const auto& [col, val] : x.Row(i)) s += val * colsum[col];
    sums[i] = s;
  }
  inv_norm_ = InvertSqrt(std::move(sums));
}

double ExactCosineSnas::Snas(NodeId i, NodeId j) const {
  return x_.Dot(i, j) * inv_norm_[i] * inv_norm_[j];
}

ExactExpCosineSnas::ExactExpCosineSnas(const AttributeMatrix& x, double delta)
    : x_(x), delta_(delta) {
  LACA_CHECK(delta > 0.0, "delta must be positive");
  const NodeId n = x.num_rows();
  std::vector<double> sums(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId l = 0; l < n; ++l) sums[i] += std::exp(x.Dot(i, l) / delta_);
  }
  inv_norm_ = InvertSqrt(std::move(sums));
}

double ExactExpCosineSnas::Snas(NodeId i, NodeId j) const {
  return std::exp(x_.Dot(i, j) / delta_) * inv_norm_[i] * inv_norm_[j];
}

JaccardSnas::JaccardSnas(const AttributeMatrix& x) : x_(x) {
  const NodeId n = x.num_rows();
  std::vector<double> sums(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId l = 0; l < n; ++l) sums[i] += Jaccard(i, l);
  }
  inv_norm_ = InvertSqrt(std::move(sums));
}

double JaccardSnas::Jaccard(NodeId i, NodeId j) const {
  auto a = x_.Row(i);
  auto b = x_.Row(j);
  size_t p = 0, q = 0, common = 0;
  while (p < a.size() && q < b.size()) {
    if (a[p].first < b[q].first) {
      ++p;
    } else if (a[p].first > b[q].first) {
      ++q;
    } else {
      ++common;
      ++p;
      ++q;
    }
  }
  size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(uni);
}

double JaccardSnas::Snas(NodeId i, NodeId j) const {
  return Jaccard(i, j) * inv_norm_[i] * inv_norm_[j];
}

PearsonSnas::PearsonSnas(const AttributeMatrix& x) : x_(x) {
  const NodeId n = x.num_rows();
  const uint32_t d = x.num_cols();
  LACA_CHECK(d >= 2, "Pearson needs at least 2 attribute dimensions");
  mean_.resize(n);
  inv_std_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    double sum = 0.0;
    for (const auto& [col, val] : x.Row(i)) sum += val;
    mean_[i] = sum / d;
    double var = 0.0;
    // E[v^2] - mean^2 over all d entries (zeros included).
    for (const auto& [col, val] : x.Row(i)) var += val * val;
    var = var / d - mean_[i] * mean_[i];
    inv_std_[i] = var > 0.0 ? 1.0 / std::sqrt(var) : 0.0;
  }
  std::vector<double> sums(n, 0.0);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId l = 0; l < n; ++l) sums[i] += ShiftedPearson(i, l);
  }
  inv_norm_ = InvertSqrt(std::move(sums));
}

double PearsonSnas::ShiftedPearson(NodeId i, NodeId j) const {
  // cov(x_i, x_j) = E[x_i x_j] - mean_i mean_j over d dimensions.
  const uint32_t d = x_.num_cols();
  double exy = x_.Dot(i, j) / d;
  double cov = exy - mean_[i] * mean_[j];
  double corr = cov * inv_std_[i] * inv_std_[j];
  corr = std::clamp(corr, -1.0, 1.0);
  return corr + 1.0;  // shift to [0, 2] so SNAS normalizers stay positive
}

double PearsonSnas::Snas(NodeId i, NodeId j) const {
  return ShiftedPearson(i, j) * inv_norm_[i] * inv_norm_[j];
}

Graph GaussianReweight(const Graph& graph, const AttributeMatrix& x,
                       double bandwidth) {
  LACA_CHECK(bandwidth > 0.0, "bandwidth must be positive");
  LACA_CHECK(x.num_rows() == graph.num_nodes(),
             "attribute rows must match node count");
  const double inv = 1.0 / (2.0 * bandwidth * bandwidth);
  GraphBuilder builder(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.Neighbors(u)) {
      if (v <= u) continue;
      double w = std::exp(-x.DistanceSq(u, v) * inv);
      builder.AddEdge(u, v, std::max(w, kNormFloor));
    }
  }
  return builder.Build(/*weighted=*/true);
}

}  // namespace laca
