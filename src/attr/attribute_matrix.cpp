#include "attr/attribute_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace laca {

AttributeMatrix::AttributeMatrix(NodeId n, uint32_t d)
    : num_cols_(d), rows_(n) {}

void AttributeMatrix::SetRow(NodeId i, std::vector<Entry> entries) {
  LACA_CHECK(i < rows_.size(), "row index out of range");
  std::sort(entries.begin(), entries.end());
  size_t out = 0;
  for (size_t j = 0; j < entries.size();) {
    uint32_t col = entries[j].first;
    LACA_CHECK(col < num_cols_, "attribute column out of range");
    double sum = 0.0;
    while (j < entries.size() && entries[j].first == col) {
      sum += entries[j].second;
      ++j;
    }
    if (sum != 0.0) entries[out++] = {col, sum};
  }
  entries.resize(out);
  rows_[i] = std::move(entries);
}

void AttributeMatrix::Normalize() {
  for (auto& row : rows_) {
    double norm_sq = 0.0;
    for (const Entry& e : row) norm_sq += e.second * e.second;
    if (norm_sq <= 0.0) continue;
    double inv = 1.0 / std::sqrt(norm_sq);
    for (Entry& e : row) e.second *= inv;
  }
}

uint64_t AttributeMatrix::num_nonzeros() const {
  uint64_t nnz = 0;
  for (const auto& row : rows_) nnz += row.size();
  return nnz;
}

double AttributeMatrix::Dot(NodeId i, NodeId j) const {
  const auto& a = rows_[i];
  const auto& b = rows_[j];
  double s = 0.0;
  size_t p = 0, q = 0;
  while (p < a.size() && q < b.size()) {
    if (a[p].first < b[q].first) {
      ++p;
    } else if (a[p].first > b[q].first) {
      ++q;
    } else {
      s += a[p].second * b[q].second;
      ++p;
      ++q;
    }
  }
  return s;
}

double AttributeMatrix::RowNormSq(NodeId i) const {
  double s = 0.0;
  for (const Entry& e : rows_[i]) s += e.second * e.second;
  return s;
}

std::vector<double> AttributeMatrix::DenseRow(NodeId i) const {
  std::vector<double> dense(num_cols_, 0.0);
  for (const Entry& e : rows_[i]) dense[e.first] = e.second;
  return dense;
}

double AttributeMatrix::DistanceSq(NodeId i, NodeId j) const {
  return RowNormSq(i) + RowNormSq(j) - 2.0 * Dot(i, j);
}

}  // namespace laca
