#include "attr/tnam_io.hpp"

#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace laca {

void SaveTnamBinary(const Tnam& tnam, const std::string& path) {
  BinaryWriter writer;
  writer.WriteU64(tnam.z().rows());
  writer.WriteU64(tnam.z().cols());
  writer.WriteDoubleArray(tnam.z().data());
  writer.Save(path, BinaryKind::kTnam);
}

Tnam LoadTnamBinary(const std::string& path) {
  BinaryReader reader(path, BinaryKind::kTnam);
  const uint64_t rows = reader.ReadU64();
  const uint64_t cols = reader.ReadU64();
  // num_rows() narrows to NodeId, so a u64 row count past NodeId range
  // would truncate silently (2^32 + k reads back as k); reject it here
  // where the full-width value is still visible.
  LACA_CHECK(rows <= std::numeric_limits<NodeId>::max(),
             "TNAM row count " + std::to_string(rows) +
                 " exceeds the node-id range in " + path);
  LACA_CHECK(rows == 0 ||
                 cols <= std::numeric_limits<uint64_t>::max() / rows,
             "TNAM dimensions overflow in " + path);
  // ReadDoubleArray bounds the count against the payload size, so the
  // allocation below is limited by the actual file size.
  std::vector<double> data = reader.ReadDoubleArray(rows * cols);
  reader.ExpectEnd();
  DenseMatrix z(rows, cols);
  z.data() = std::move(data);
  return Tnam::FromMatrix(std::move(z));
}

Tnam LoadTnamBinary(const std::string& path, NodeId expected_rows) {
  Tnam tnam = LoadTnamBinary(path);
  LACA_CHECK(tnam.num_rows() == expected_rows,
             "TNAM in " + path + " covers " +
                 std::to_string(tnam.num_rows()) +
                 " nodes but the serving graph has " +
                 std::to_string(expected_rows));
  return tnam;
}

}  // namespace laca
