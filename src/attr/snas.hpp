// Symmetric Normalized Attribute Similarity (SNAS, Section II-B).
//
// s(v_i, v_j) = f(x_i, x_j) / (sqrt(sum_l f(x_i, x_l)) sqrt(sum_l f(x_j, x_l)))
//
// This header provides exact reference implementations used by tests and by
// the alternative-metric experiments (Table XI); the production path goes
// through the factorized TNAM (attr/tnam.hpp).
#ifndef LACA_ATTR_SNAS_HPP_
#define LACA_ATTR_SNAS_HPP_

#include <memory>
#include <vector>

#include "attr/attribute_matrix.hpp"
#include "graph/graph.hpp"

namespace laca {

/// The two metric functions f(.,.) the paper instantiates (Eqs. 2 and 4).
enum class SnasMetric {
  kCosine,     // f(x_i, x_j) = x_i . x_j
  kExpCosine,  // f(x_i, x_j) = exp(x_i . x_j / delta)
};

/// Abstract pairwise node-similarity provider. Implemented by the exact
/// SNAS below and by Tnam (low-rank approximation).
class SnasProvider {
 public:
  virtual ~SnasProvider() = default;
  /// Returns s(v_i, v_j) in [0, 1].
  virtual double Snas(NodeId i, NodeId j) const = 0;
};

/// Exact SNAS with the cosine metric (Eq. 2). Normalizers cost O(nnz(X)).
class ExactCosineSnas : public SnasProvider {
 public:
  explicit ExactCosineSnas(const AttributeMatrix& x);
  double Snas(NodeId i, NodeId j) const override;

 private:
  const AttributeMatrix& x_;
  std::vector<double> inv_norm_;  // 1 / sqrt(sum_l x_i . x_l)
};

/// Exact SNAS with the exponential cosine metric (Eq. 4). Normalizers cost
/// O(n^2 nnz); intended for small reference graphs (tests, Table XI).
class ExactExpCosineSnas : public SnasProvider {
 public:
  ExactExpCosineSnas(const AttributeMatrix& x, double delta);
  double Snas(NodeId i, NodeId j) const override;

 private:
  const AttributeMatrix& x_;
  double delta_;
  std::vector<double> inv_norm_;
};

/// SNAS with the Jaccard coefficient over attribute supports (Table XI).
/// Treats attributes as binary presence sets; O(n^2) normalizers.
class JaccardSnas : public SnasProvider {
 public:
  explicit JaccardSnas(const AttributeMatrix& x);
  double Snas(NodeId i, NodeId j) const override;

 private:
  double Jaccard(NodeId i, NodeId j) const;
  const AttributeMatrix& x_;
  std::vector<double> inv_norm_;
};

/// SNAS with the Pearson correlation coefficient, shifted to [0, 2] so the
/// normalizers stay positive (Table XI). O(n^2 d) normalizers — the paper
/// likewise only reports this variant on small datasets.
class PearsonSnas : public SnasProvider {
 public:
  explicit PearsonSnas(const AttributeMatrix& x);
  double Snas(NodeId i, NodeId j) const override;

 private:
  double ShiftedPearson(NodeId i, NodeId j) const;
  const AttributeMatrix& x_;
  std::vector<double> mean_, inv_std_;
  std::vector<double> inv_norm_;
};

/// Identity SNAS: s(i, j) = [i == j]. With this provider the BDD degenerates
/// to the CoSimRank-style topology-only measure (the paper's Remark in
/// Section II-C and the LACA (w/o SNAS) ablation).
class IdentitySnas : public SnasProvider {
 public:
  double Snas(NodeId i, NodeId j) const override { return i == j ? 1.0 : 0.0; }
};

/// Reweights each edge {u, v} by the Gaussian kernel
/// exp(-||x_u - x_v||^2 / (2 bandwidth^2)) of its endpoints' attributes —
/// the strategy of APR-Nibble and WFD [33]. Returns a weighted graph with
/// identical topology.
Graph GaussianReweight(const Graph& graph, const AttributeMatrix& x,
                       double bandwidth);

}  // namespace laca

#endif  // LACA_ATTR_SNAS_HPP_
