// Attribute preprocessing for raw bag-of-words / feature matrices.
//
// The paper's datasets ship attributes in very different conditions: Cora has
// binary word flags, PubMed TF-IDF weights, BlogCL/Flickr huge noisy
// vocabularies (d > 8000), OGB graphs dense float features. These transforms
// bring raw matrices into the shape the SNAS machinery expects — informative,
// bounded-dimension, L2-normalizable rows — and are what a user applies
// between graph/formats.hpp loaders and Tnam::Build.
//
// All transforms return a new matrix; inputs are never modified. None of them
// L2-normalizes — call Normalize() (or rely on Tnam::Build's requirement)
// after the pipeline.
#ifndef LACA_ATTR_PREPROCESS_HPP_
#define LACA_ATTR_PREPROCESS_HPP_

#include <cstdint>
#include <vector>

#include "attr/attribute_matrix.hpp"

namespace laca {

/// Replaces every non-zero entry with 1 (bag-of-words presence flags).
AttributeMatrix Binarize(const AttributeMatrix& x);

/// Options for TF-IDF weighting.
struct TfIdfOptions {
  /// Use 1 + log(tf) instead of raw term frequency (sublinear scaling).
  bool sublinear_tf = false;
  /// Add-one smoothing of document frequencies (the scikit-learn convention:
  /// idf = log((1 + n) / (1 + df)) + 1); without smoothing idf = log(n / df).
  bool smooth_idf = true;
};

/// Applies TF-IDF weighting: entry (i, j) becomes tf(i, j) * idf(j), where
/// df(j) counts rows with a non-zero in column j. Columns with df = 0 keep
/// weight 0. Throws std::invalid_argument on an empty matrix.
AttributeMatrix TfIdf(const AttributeMatrix& x, const TfIdfOptions& opts = {});

/// Options for document-frequency column pruning.
struct PruneColumnsOptions {
  /// Drop columns appearing in fewer than this many rows (rare/noise terms).
  uint32_t min_document_frequency = 1;
  /// Drop columns appearing in more than this fraction of rows (stop words).
  /// 1.0 keeps everything.
  double max_document_fraction = 1.0;
};

/// Result of a column-pruning pass.
struct PrunedColumns {
  AttributeMatrix matrix;
  /// Surviving columns: new column j held old column `kept[j]`.
  std::vector<uint32_t> kept;
};

/// Drops under- and over-represented columns and compacts the indices.
/// Rows losing all entries become empty rows (callers on attributed LGC
/// typically want to keep such nodes but expect zero attribute affinity).
PrunedColumns PruneColumnsByFrequency(const AttributeMatrix& x,
                                      const PruneColumnsOptions& opts);

/// Per-column document frequencies (rows with a non-zero in that column).
std::vector<uint32_t> DocumentFrequencies(const AttributeMatrix& x);

}  // namespace laca

#endif  // LACA_ATTR_PREPROCESS_HPP_
