// TNAM — transformed node attribute matrix Z (Algo. 3).
//
// Z factorizes the SNAS: s(v_i, v_j) ~= z(i) . z(j) (Eq. 10), which lets
// LACA decouple the BDD into two graph diffusions plus O(k) work per node.
//
// Construction shards over row blocks of a ThreadPool (Build's default is
// the process-wide SharedPool()). Every kernel in the pipeline preserves the
// serial FP accumulation order, so a fixed seed yields a bit-identical Z at
// every thread count (DESIGN.md §6; enforced by tnam_test and
// bench_ext_tnam_build).
#ifndef LACA_ATTR_TNAM_HPP_
#define LACA_ATTR_TNAM_HPP_

#include <cstdint>
#include <span>

#include "attr/attribute_matrix.hpp"
#include "attr/snas.hpp"
#include "common/sparse_vector.hpp"
#include "la/matrix.hpp"

namespace laca {

class ThreadPool;

/// Options for TNAM construction.
struct TnamOptions {
  /// Target dimension k of the k-SVD reduction (paper default: 32). The
  /// exponential-cosine path emits 2k-dimensional rows (sin || cos).
  int k = 32;
  SnasMetric metric = SnasMetric::kCosine;
  /// Sensitivity factor delta of the exponential cosine metric (Eq. 3);
  /// the paper uses 1 or 2.
  double delta = 1.0;
  /// Subspace iterations of the randomized k-SVD (paper: 7).
  int power_iterations = 7;
  int oversample = 8;
  uint64_t seed = 7;
  /// Ablation switch (Table VI, "w/o k-SVD"): skip the rank-k reduction and
  /// operate on the raw attribute matrix instead.
  bool use_ksvd = true;
};

/// The constructed TNAM: dense rows z(i) with s(i, j) ~= z(i) . z(j).
class Tnam : public SnasProvider {
 public:
  /// Runs Algo. 3 on the (L2-normalized) attribute matrix, sharding row
  /// blocks over the process-wide SharedPool() (bit-identical to a serial
  /// build). Throws std::invalid_argument on empty input or bad options.
  static Tnam Build(const AttributeMatrix& x, const TnamOptions& opts);

  /// As Build, on an explicit pool (null = fully serial). The output is
  /// bit-identical for any pool size at a fixed seed.
  static Tnam Build(const AttributeMatrix& x, const TnamOptions& opts,
                    ThreadPool* pool);

  /// Wraps an already-built Z matrix (deserialization and tests). Rows are
  /// the z(i) vectors; no validation beyond non-emptiness is performed.
  static Tnam FromMatrix(DenseMatrix z);

  /// Number of nodes.
  NodeId num_rows() const { return static_cast<NodeId>(z_.rows()); }

  /// Row dimension: k for cosine, 2k for exponential cosine (sin || cos),
  /// d when built with use_ksvd = false and the cosine metric.
  size_t dim() const { return z_.cols(); }

  /// The vector z(i).
  std::span<const double> Row(NodeId i) const { return z_.Row(i); }

  /// Approximate SNAS z(i) . z(j) (SnasProvider interface).
  double Snas(NodeId i, NodeId j) const override { return z_.RowDot(i, j); }

  // -- Fused Step-2 kernels (Eqs. 12-13) -----------------------------------
  // LACA's per-query hot loop aggregates TNAM rows over supp(pi'). These
  // batched passes run on the contiguous Z storage with no virtual dispatch
  // per element; accumulation order matches the naive entry-by-entry loops
  // exactly (bit-identical).

  /// psi += sum_e e.value * z(e.index) (Eq. 12 aggregation). `psi` must have
  /// dim() elements; it is accumulated into, not cleared.
  void AccumulateRows(std::span<const SparseVector::Entry> entries,
                      std::span<double> psi) const;

  /// out[t] = psi . z(entries[t].index) for every entry (Eq. 13 dot pass).
  /// `out` must have entries.size() elements.
  void DotRows(std::span<const SparseVector::Entry> entries,
               std::span<const double> psi, std::span<double> out) const;

  /// out[t] = z(i) . z(js[t]) — batched SNAS row against many targets
  /// (the per-edge pattern of the alternative-BDD legs). `out` must have
  /// js.size() elements.
  void SnasBatch(NodeId i, std::span<const NodeId> js,
                 std::span<double> out) const;

  const DenseMatrix& z() const { return z_; }

 private:
  explicit Tnam(DenseMatrix z) : z_(std::move(z)) {}
  DenseMatrix z_;
};

}  // namespace laca

#endif  // LACA_ATTR_TNAM_HPP_
