// TNAM — transformed node attribute matrix Z (Algo. 3).
//
// Z factorizes the SNAS: s(v_i, v_j) ~= z(i) . z(j) (Eq. 10), which lets
// LACA decouple the BDD into two graph diffusions plus O(k) work per node.
#ifndef LACA_ATTR_TNAM_HPP_
#define LACA_ATTR_TNAM_HPP_

#include <cstdint>
#include <span>

#include "attr/attribute_matrix.hpp"
#include "attr/snas.hpp"
#include "la/matrix.hpp"

namespace laca {

/// Options for TNAM construction.
struct TnamOptions {
  /// Target dimension k of the k-SVD reduction (paper default: 32). The
  /// exponential-cosine path emits 2k-dimensional rows (sin || cos).
  int k = 32;
  SnasMetric metric = SnasMetric::kCosine;
  /// Sensitivity factor delta of the exponential cosine metric (Eq. 3);
  /// the paper uses 1 or 2.
  double delta = 1.0;
  /// Subspace iterations of the randomized k-SVD (paper: 7).
  int power_iterations = 7;
  int oversample = 8;
  uint64_t seed = 7;
  /// Ablation switch (Table VI, "w/o k-SVD"): skip the rank-k reduction and
  /// operate on the raw attribute matrix instead.
  bool use_ksvd = true;
};

/// The constructed TNAM: dense rows z(i) with s(i, j) ~= z(i) . z(j).
class Tnam : public SnasProvider {
 public:
  /// Runs Algo. 3 on the (L2-normalized) attribute matrix.
  /// Throws std::invalid_argument on empty input or bad options.
  static Tnam Build(const AttributeMatrix& x, const TnamOptions& opts);

  /// Wraps an already-built Z matrix (deserialization and tests). Rows are
  /// the z(i) vectors; no validation beyond non-emptiness is performed.
  static Tnam FromMatrix(DenseMatrix z);

  /// Number of nodes.
  NodeId num_rows() const { return static_cast<NodeId>(z_.rows()); }

  /// Row dimension: k for cosine, 2k for exponential cosine (sin || cos),
  /// d when built with use_ksvd = false and the cosine metric.
  size_t dim() const { return z_.cols(); }

  /// The vector z(i).
  std::span<const double> Row(NodeId i) const { return z_.Row(i); }

  /// Approximate SNAS z(i) . z(j) (SnasProvider interface).
  double Snas(NodeId i, NodeId j) const override { return z_.RowDot(i, j); }

  const DenseMatrix& z() const { return z_; }

 private:
  explicit Tnam(DenseMatrix z) : z_(std::move(z)) {}
  DenseMatrix z_;
};

}  // namespace laca

#endif  // LACA_ATTR_TNAM_HPP_
