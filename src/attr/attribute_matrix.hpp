// Sparse node-attribute matrix X (n rows, d columns).
#ifndef LACA_ATTR_ATTRIBUTE_MATRIX_HPP_
#define LACA_ATTR_ATTRIBUTE_MATRIX_HPP_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace laca {

/// Row-sparse attribute matrix with L2-normalized rows.
///
/// Row i is node v_i's attribute vector x^(i). The paper assumes
/// ||x^(i)||_2 = 1 throughout (Section II-A); `Normalize()` enforces this and
/// is called by all factory paths in this library. Column indices within a
/// row are sorted, enabling O(nnz_i + nnz_j) sparse dot products.
class AttributeMatrix {
 public:
  /// A single (column, value) attribute entry.
  using Entry = std::pair<uint32_t, double>;

  AttributeMatrix() = default;

  /// Creates an all-zero matrix with `n` rows and `d` columns.
  AttributeMatrix(NodeId n, uint32_t d);

  /// Replaces row `i` with the given (column, value) pairs. Columns must be
  /// < num_cols(); duplicates are merged and the row is sorted by column.
  /// Throws std::invalid_argument on out-of-range input.
  void SetRow(NodeId i, std::vector<Entry> entries);

  /// L2-normalizes every non-empty row in place.
  void Normalize();

  NodeId num_rows() const { return static_cast<NodeId>(rows_.size()); }
  uint32_t num_cols() const { return num_cols_; }
  uint64_t num_nonzeros() const;

  /// Sorted (column, value) entries of row i.
  std::span<const Entry> Row(NodeId i) const {
    return {rows_[i].data(), rows_[i].size()};
  }

  /// Sparse dot product x^(i) . x^(j).
  double Dot(NodeId i, NodeId j) const;

  /// Squared L2 norm of row i.
  double RowNormSq(NodeId i) const;

  /// Materializes row i as a dense length-d vector.
  std::vector<double> DenseRow(NodeId i) const;

  /// Squared Euclidean distance ||x^(i) - x^(j)||^2 (= 2 - 2 Dot for
  /// normalized rows, but computed directly so it also works pre-Normalize).
  double DistanceSq(NodeId i, NodeId j) const;

 private:
  uint32_t num_cols_ = 0;
  std::vector<std::vector<Entry>> rows_;
};

}  // namespace laca

#endif  // LACA_ATTR_ATTRIBUTE_MATRIX_HPP_
