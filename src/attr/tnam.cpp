#include "attr/tnam.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/qr.hpp"
#include "la/randomized_svd.hpp"

namespace laca {
namespace {

// y(i) . y* can dip below zero through low-rank / random-feature noise even
// though the exact quantity sum_l f(x_i, x_l) is positive; clamp before the
// square root in Eq. 18.
constexpr double kNormFloor = 1e-12;

// Builds Y for the cosine metric: Y = U Lambda (Lines 3-4 of Algo. 3), or the
// raw attribute rows when the k-SVD is ablated.
DenseMatrix BuildCosineY(const AttributeMatrix& x, const TnamOptions& opts) {
  if (!opts.use_ksvd) {
    DenseMatrix y(x.num_rows(), x.num_cols());
    for (NodeId i = 0; i < x.num_rows(); ++i) {
      auto row = y.Row(i);
      for (const auto& [col, val] : x.Row(i)) row[col] = val;
    }
    return y;
  }
  KSvdOptions ks;
  ks.rank = opts.k;
  ks.power_iterations = opts.power_iterations;
  ks.oversample = opts.oversample;
  ks.seed = opts.seed;
  KSvdResult svd = RandomizedKSvd(x, ks);
  DenseMatrix y = std::move(svd.u);
  for (size_t i = 0; i < y.rows(); ++i) {
    auto row = y.Row(i);
    for (size_t j = 0; j < y.cols(); ++j) row[j] *= svd.sigma[j];
  }
  return y;
}

// Orthogonal random features (Lines 6-9 of Algo. 3): given reduced features
// F (n x r), samples an orthogonal matrix with chi-scaled rows and maps
// Y = sqrt(2 exp(1/delta) / r) [sin(F S / delta) || cos(F S / delta)].
DenseMatrix ApplyOrf(const DenseMatrix& f, double delta, uint64_t seed) {
  const size_t r = f.cols();
  Rng rng(seed);
  // Random orthogonal Q (r x r) via QR of a Gaussian (Line 7).
  DenseMatrix g(r, r);
  for (double& v : g.data()) v = rng.Normal();
  DenseMatrix q = QrOrthonormal(g);
  // Chi-scaled rows so ||row_i(S Q)|| is distributed like a Gaussian row
  // (Line 8): S = diag(chi(r)).
  std::vector<double> chi(r);
  for (double& c : chi) c = rng.Chi(static_cast<int>(r));
  // Yhat = (1/delta) F (Sigma Q): projection matrix rows scaled by chi.
  DenseMatrix proj(r, r);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < r; ++j) proj(i, j) = chi[i] * q(i, j) / delta;
  }
  DenseMatrix yhat = f.Multiply(proj);
  const double scale = std::sqrt(2.0 * std::exp(1.0 / delta) / r);
  DenseMatrix y(f.rows(), 2 * r);
  for (size_t i = 0; i < f.rows(); ++i) {
    auto in = yhat.Row(i);
    auto out = y.Row(i);
    for (size_t j = 0; j < r; ++j) {
      out[j] = scale * std::sin(in[j]);
      out[r + j] = scale * std::cos(in[j]);
    }
  }
  return y;
}

// w/o k-SVD exponential path: ORF directly on the d-dimensional attributes
// with k orthonormal directions in R^d (rows of Q^T from a d x k Gaussian QR),
// chi(d)-scaled so row norms match d-dimensional Gaussian vectors.
DenseMatrix ApplyOrfRaw(const AttributeMatrix& x, int k, double delta,
                        uint64_t seed) {
  const uint32_t d = x.num_cols();
  const size_t r = std::min<size_t>(k, d);
  Rng rng(seed);
  DenseMatrix g(d, r);
  for (double& v : g.data()) v = rng.Normal();
  DenseMatrix q = QrOrthonormal(g);  // d x r, orthonormal columns
  std::vector<double> chi(r);
  for (double& c : chi) c = rng.Chi(static_cast<int>(d));
  // Yhat = (1/delta) X Q diag(chi): exploit X's sparsity.
  DenseMatrix yhat = SparseTimesDense(x, q);
  for (size_t i = 0; i < yhat.rows(); ++i) {
    auto row = yhat.Row(i);
    for (size_t j = 0; j < r; ++j) row[j] *= chi[j] / delta;
  }
  const double scale = std::sqrt(2.0 * std::exp(1.0 / delta) / r);
  DenseMatrix y(yhat.rows(), 2 * r);
  for (size_t i = 0; i < yhat.rows(); ++i) {
    auto in = yhat.Row(i);
    auto out = y.Row(i);
    for (size_t j = 0; j < r; ++j) {
      out[j] = scale * std::sin(in[j]);
      out[r + j] = scale * std::cos(in[j]);
    }
  }
  return y;
}

}  // namespace

Tnam Tnam::FromMatrix(DenseMatrix z) {
  LACA_CHECK(z.rows() > 0 && z.cols() > 0, "TNAM matrix must be non-empty");
  return Tnam(std::move(z));
}

Tnam Tnam::Build(const AttributeMatrix& x, const TnamOptions& opts) {
  LACA_CHECK(x.num_rows() > 0, "attribute matrix has no rows");
  LACA_CHECK(x.num_cols() > 0, "attribute matrix has no columns");
  LACA_CHECK(opts.k >= 1, "k must be >= 1");
  LACA_CHECK(opts.delta > 0.0, "delta must be positive");

  DenseMatrix y;
  switch (opts.metric) {
    case SnasMetric::kCosine:
      y = BuildCosineY(x, opts);
      break;
    case SnasMetric::kExpCosine:
      if (opts.use_ksvd) {
        y = ApplyOrf(BuildCosineY(x, opts), opts.delta, opts.seed + 1);
      } else {
        y = ApplyOrfRaw(x, opts.k, opts.delta, opts.seed + 1);
      }
      break;
  }

  // Eq. 18: y* = sum_l y(l); z(i) = y(i) / sqrt(y(i) . y*).
  const size_t n = y.rows(), dim = y.cols();
  std::vector<double> ystar(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto row = y.Row(i);
    for (size_t j = 0; j < dim; ++j) ystar[j] += row[j];
  }
  for (size_t i = 0; i < n; ++i) {
    auto row = y.Row(i);
    double dot = 0.0;
    for (size_t j = 0; j < dim; ++j) dot += row[j] * ystar[j];
    double inv = 1.0 / std::sqrt(std::max(dot, kNormFloor));
    for (size_t j = 0; j < dim; ++j) row[j] *= inv;
  }
  return Tnam(std::move(y));
}

}  // namespace laca
