#include "attr/tnam.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "la/qr.hpp"
#include "la/randomized_svd.hpp"

namespace laca {
namespace {

// y(i) . y* can dip below zero through low-rank / random-feature noise even
// though the exact quantity sum_l f(x_i, x_l) is positive; clamp before the
// square root in Eq. 18.
constexpr double kNormFloor = 1e-12;

// Row passes below this many elements stay serial (dispatch would dominate).
constexpr size_t kParallelRowsMin = 1u << 15;

ThreadPool* Gate(ThreadPool* pool, size_t work) {
  return GateBySize(pool, work, kParallelRowsMin);
}

// Builds Y for the cosine metric: Y = U Lambda (Lines 3-4 of Algo. 3), or the
// raw attribute rows when the k-SVD is ablated.
DenseMatrix BuildCosineY(const AttributeMatrix& x, const TnamOptions& opts,
                         ThreadPool* pool) {
  if (!opts.use_ksvd) {
    DenseMatrix y(x.num_rows(), x.num_cols());
    for (NodeId i = 0; i < x.num_rows(); ++i) {
      auto row = y.Row(i);
      for (const auto& [col, val] : x.Row(i)) row[col] = val;
    }
    return y;
  }
  KSvdOptions ks;
  ks.rank = opts.k;
  ks.power_iterations = opts.power_iterations;
  ks.oversample = opts.oversample;
  ks.seed = opts.seed;
  KSvdResult svd = RandomizedKSvd(x, ks, pool);
  DenseMatrix y = std::move(svd.u);
  const size_t cols = y.cols();
  ForEachBlock(Gate(pool, y.rows() * cols), y.rows(),
               DenseRowBlock(cols), [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      double* row = y.Row(i).data();
      for (size_t j = 0; j < cols; ++j) row[j] *= svd.sigma[j];
    }
  });
  return y;
}

// The sin/cos feature map shared by both ORF paths: given the projected
// features `yhat` (n x r), writes scale * [sin || cos] row blocks in
// parallel (rows are independent — bit-identical at any thread count).
DenseMatrix SinCosMap(const DenseMatrix& yhat, double delta,
                      ThreadPool* pool) {
  const size_t r = yhat.cols();
  const double scale = std::sqrt(2.0 * std::exp(1.0 / delta) / r);
  DenseMatrix y(yhat.rows(), 2 * r);
  ForEachBlock(Gate(pool, yhat.rows() * r), yhat.rows(),
               DenseRowBlock(2 * r), [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const double* in = yhat.Row(i).data();
      double* out = y.Row(i).data();
      for (size_t j = 0; j < r; ++j) {
        out[j] = scale * std::sin(in[j]);
        out[r + j] = scale * std::cos(in[j]);
      }
    }
  });
  return y;
}

// Orthogonal random features (Lines 6-9 of Algo. 3): given reduced features
// F (n x r), samples an orthogonal matrix with chi-scaled rows and maps
// Y = sqrt(2 exp(1/delta) / r) [sin(F S / delta) || cos(F S / delta)].
DenseMatrix ApplyOrf(const DenseMatrix& f, double delta, uint64_t seed,
                     ThreadPool* pool) {
  const size_t r = f.cols();
  Rng rng(seed);
  // Random orthogonal Q (r x r) via QR of a Gaussian (Line 7).
  DenseMatrix g(r, r);
  for (double& v : g.data()) v = rng.Normal();
  DenseMatrix q = QrOrthonormal(g);
  // Chi-scaled rows so ||row_i(S Q)|| is distributed like a Gaussian row
  // (Line 8): S = diag(chi(r)).
  std::vector<double> chi(r);
  for (double& c : chi) c = rng.Chi(static_cast<int>(r));
  // Yhat = (1/delta) F (Sigma Q): projection matrix rows scaled by chi.
  DenseMatrix proj(r, r);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < r; ++j) proj(i, j) = chi[i] * q(i, j) / delta;
  }
  DenseMatrix yhat;
  f.MultiplyInto(proj, &yhat, pool);
  return SinCosMap(yhat, delta, pool);
}

// w/o k-SVD exponential path: ORF directly on the d-dimensional attributes
// with k orthonormal directions in R^d (rows of Q^T from a d x k Gaussian QR),
// chi(d)-scaled so row norms match d-dimensional Gaussian vectors.
DenseMatrix ApplyOrfRaw(const AttributeMatrix& x, int k, double delta,
                        uint64_t seed, ThreadPool* pool) {
  const uint32_t d = x.num_cols();
  const size_t r = std::min<size_t>(k, d);
  Rng rng(seed);
  DenseMatrix g(d, r);
  for (double& v : g.data()) v = rng.Normal();
  DenseMatrix q = QrOrthonormal(g);  // d x r, orthonormal columns
  std::vector<double> chi(r);
  for (double& c : chi) c = rng.Chi(static_cast<int>(d));
  // Yhat = (1/delta) X Q diag(chi): exploit X's sparsity.
  DenseMatrix yhat;
  SparseTimesDenseInto(x, q, &yhat, pool);
  ForEachBlock(Gate(pool, yhat.rows() * r), yhat.rows(),
               DenseRowBlock(r), [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      double* row = yhat.Row(i).data();
      for (size_t j = 0; j < r; ++j) row[j] *= chi[j] / delta;
    }
  });
  return SinCosMap(yhat, delta, pool);
}

}  // namespace

Tnam Tnam::FromMatrix(DenseMatrix z) {
  LACA_CHECK(z.rows() > 0 && z.cols() > 0, "TNAM matrix must be non-empty");
  return Tnam(std::move(z));
}

Tnam Tnam::Build(const AttributeMatrix& x, const TnamOptions& opts) {
  return Build(x, opts, SharedPoolOrSerial());
}

Tnam Tnam::Build(const AttributeMatrix& x, const TnamOptions& opts,
                 ThreadPool* pool) {
  LACA_CHECK(x.num_rows() > 0, "attribute matrix has no rows");
  LACA_CHECK(x.num_cols() > 0, "attribute matrix has no columns");
  LACA_CHECK(opts.k >= 1, "k must be >= 1");
  LACA_CHECK(opts.delta > 0.0, "delta must be positive");

  DenseMatrix y;
  switch (opts.metric) {
    case SnasMetric::kCosine:
      y = BuildCosineY(x, opts, pool);
      break;
    case SnasMetric::kExpCosine:
      if (opts.use_ksvd) {
        y = ApplyOrf(BuildCosineY(x, opts, pool), opts.delta, opts.seed + 1,
                     pool);
      } else {
        y = ApplyOrfRaw(x, opts.k, opts.delta, opts.seed + 1, pool);
      }
      break;
  }

  // Eq. 18: y* = sum_l y(l); z(i) = y(i) / sqrt(y(i) . y*). The y* reduction
  // stays serial (O(n k), negligible) so its FP chain is the canonical
  // serial order; the per-row normalization shards freely (independent rows).
  const size_t n = y.rows(), dim = y.cols();
  std::vector<double> ystar(dim, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = y.Row(i).data();
    for (size_t j = 0; j < dim; ++j) ystar[j] += row[j];
  }
  ForEachBlock(Gate(pool, n * dim), n, DenseRowBlock(dim),
               [&](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      double* row = y.Row(i).data();
      double dot = 0.0;
      for (size_t j = 0; j < dim; ++j) dot += row[j] * ystar[j];
      double inv = 1.0 / std::sqrt(std::max(dot, kNormFloor));
      for (size_t j = 0; j < dim; ++j) row[j] *= inv;
    }
  });
  return Tnam(std::move(y));
}

void Tnam::AccumulateRows(std::span<const SparseVector::Entry> entries,
                          std::span<double> psi) const {
  LACA_CHECK(psi.size() == z_.cols(), "AccumulateRows: psi dimension");
  const size_t dim = z_.cols();
  double* p = psi.data();
  for (const auto& e : entries) {
    const double* z = z_.Row(e.index).data();
    const double v = e.value;
    for (size_t j = 0; j < dim; ++j) p[j] += v * z[j];
  }
}

void Tnam::DotRows(std::span<const SparseVector::Entry> entries,
                   std::span<const double> psi, std::span<double> out) const {
  LACA_CHECK(psi.size() == z_.cols(), "DotRows: psi dimension");
  LACA_CHECK(out.size() == entries.size(), "DotRows: output size");
  const size_t dim = z_.cols();
  const double* p = psi.data();
  for (size_t t = 0; t < entries.size(); ++t) {
    const double* z = z_.Row(entries[t].index).data();
    double dot = 0.0;
    for (size_t j = 0; j < dim; ++j) dot += p[j] * z[j];
    out[t] = dot;
  }
}

void Tnam::SnasBatch(NodeId i, std::span<const NodeId> js,
                     std::span<double> out) const {
  LACA_CHECK(out.size() == js.size(), "SnasBatch: output size");
  const size_t dim = z_.cols();
  const double* zi = z_.Row(i).data();
  for (size_t t = 0; t < js.size(); ++t) {
    const double* zj = z_.Row(js[t]).data();
    double dot = 0.0;
    for (size_t j = 0; j < dim; ++j) dot += zi[j] * zj[j];
    out[t] = dot;
  }
}

}  // namespace laca
