#include "attr/preprocess.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace {
// Row transforms below this nnz count stay serial.
constexpr uint64_t kParallelPreprocessMin = 1u << 15;
}  // namespace

namespace laca {

std::vector<uint32_t> DocumentFrequencies(const AttributeMatrix& x) {
  std::vector<uint32_t> df(x.num_cols(), 0);
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    for (const auto& [col, val] : x.Row(i)) {
      if (val != 0.0) ++df[col];
    }
  }
  return df;
}

AttributeMatrix Binarize(const AttributeMatrix& x) {
  AttributeMatrix out(x.num_rows(), x.num_cols());
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    std::vector<AttributeMatrix::Entry> row;
    auto src = x.Row(i);
    row.reserve(src.size());
    for (const auto& [col, val] : src) {
      if (val != 0.0) row.emplace_back(col, 1.0);
    }
    out.SetRow(i, std::move(row));
  }
  return out;
}

AttributeMatrix TfIdf(const AttributeMatrix& x, const TfIdfOptions& opts) {
  LACA_CHECK(x.num_rows() > 0 && x.num_cols() > 0,
             "TF-IDF input must be non-empty");
  const double n = static_cast<double>(x.num_rows());
  std::vector<uint32_t> df = DocumentFrequencies(x);
  std::vector<double> idf(x.num_cols(), 0.0);
  for (uint32_t j = 0; j < x.num_cols(); ++j) {
    if (df[j] == 0) continue;
    if (opts.smooth_idf) {
      idf[j] = std::log((1.0 + n) / (1.0 + static_cast<double>(df[j]))) + 1.0;
    } else {
      idf[j] = std::log(n / static_cast<double>(df[j]));
    }
  }

  AttributeMatrix out(x.num_rows(), x.num_cols());
  // Rows transform independently (SetRow touches only its own slot), so the
  // pass shards over row blocks — identical output at any thread count.
  ThreadPool* pool =
      GateBySize(SharedPoolOrSerial(), x.num_nonzeros(), kParallelPreprocessMin);
  ForEachBlock(pool, x.num_rows(), 1024, [&](size_t, size_t lo, size_t hi) {
    for (NodeId i = static_cast<NodeId>(lo); i < hi; ++i) {
      std::vector<AttributeMatrix::Entry> row;
      auto src = x.Row(i);
      row.reserve(src.size());
      for (const auto& [col, val] : src) {
        if (val == 0.0) continue;
        // Sublinear scaling assumes count-like values; sub-1 weights (already
        // scaled inputs) pass through untouched to keep tf positive.
        const double magnitude = std::abs(val);
        double tf = (opts.sublinear_tf && magnitude >= 1.0)
                        ? 1.0 + std::log(magnitude)
                        : magnitude;
        const double weighted = tf * idf[col];
        if (weighted != 0.0) row.emplace_back(col, weighted);
      }
      out.SetRow(i, std::move(row));
    }
  });
  return out;
}

PrunedColumns PruneColumnsByFrequency(const AttributeMatrix& x,
                                      const PruneColumnsOptions& opts) {
  LACA_CHECK(opts.max_document_fraction > 0.0 &&
                 opts.max_document_fraction <= 1.0,
             "max_document_fraction must be in (0, 1]");
  const double n = static_cast<double>(x.num_rows());
  std::vector<uint32_t> df = DocumentFrequencies(x);

  PrunedColumns out;
  std::vector<uint32_t> new_index(x.num_cols(), static_cast<uint32_t>(-1));
  for (uint32_t j = 0; j < x.num_cols(); ++j) {
    if (df[j] < opts.min_document_frequency) continue;
    if (static_cast<double>(df[j]) > opts.max_document_fraction * n) continue;
    new_index[j] = static_cast<uint32_t>(out.kept.size());
    out.kept.push_back(j);
  }

  out.matrix = AttributeMatrix(x.num_rows(),
                               static_cast<uint32_t>(out.kept.size()));
  if (out.kept.empty()) return out;
  for (NodeId i = 0; i < x.num_rows(); ++i) {
    std::vector<AttributeMatrix::Entry> row;
    for (const auto& [col, val] : x.Row(i)) {
      if (new_index[col] == static_cast<uint32_t>(-1) || val == 0.0) continue;
      row.emplace_back(new_index[col], val);
    }
    out.matrix.SetRow(i, std::move(row));
  }
  return out;
}

}  // namespace laca
